"""The RPR0xx rule implementations of ``repro lint``.

Every rule is a function ``rule(module) -> Iterator[Finding]`` over a
:class:`ParsedModule`.  The rules encode invariants of *this* codebase
that generic linters cannot see:

=======  ==============================================================
RPR001   dtype-less NumPy array construction in the INT8 hot path
RPR002   width-ambiguous dtype (builtin ``int``/``float``) in kernels
RPR010   iteration over a set (order-dependent) in kernel modules
RPR011   unseeded / global-state RNG in library code
RPR012   builtin ``sum()`` reduction in kernel modules
RPR020   engine entry point doing matmul work without ledger recording
RPR030   lock-inconsistent mutation of a guarded attribute
RPR031   nested re-acquisition of a non-reentrant lock (self-deadlock)
RPR032   call under a held lock into a method that re-acquires it
RPR040   fault-path exception absorbed without ledger re-recording
=======  ==============================================================

The lock rules use *consistency inference* rather than annotations: an
attribute (or module global) that is mutated under a lock anywhere is
treated as guarded by that lock everywhere, and any mutation outside the
lock is a finding.  ``__init__``/``__new__``/``__del__`` are exempt
(construction and teardown are single-threaded by contract).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding
from .lintconfig import LintConfig

__all__ = ["ParsedModule", "RULES", "run_rules", "RULE_DOCS"]

#: One-line rule documentation (rendered by ``repro lint --explain`` and the
#: README rule table; kept here so code and docs cannot drift apart).
RULE_DOCS: Dict[str, str] = {
    "RPR001": "NumPy array construction without an explicit dtype in the "
    "INT8 hot path (defaults to float64 and breaks the overflow proofs)",
    "RPR002": "width-ambiguous dtype (builtin int/float or 'int'/'float') "
    "in a kernel module (platform-dependent width breaks bit-identity)",
    "RPR010": "iteration over a set/frozenset in a kernel module (hash order "
    "is run-dependent; wrap in sorted())",
    "RPR011": "unseeded or global-state RNG in library code (results must "
    "be reproducible from an explicit seed)",
    "RPR012": "builtin sum() in a kernel module (order-sensitive float "
    "reduction; use np.sum/math.fsum over a fixed-order operand)",
    "RPR020": "engine entry point performs matmul/matvec work without "
    "recording it on the OpCounter ledger",
    "RPR030": "mutation of a lock-guarded attribute outside the lock "
    "(guarded = mutated under that lock elsewhere)",
    "RPR031": "nested with-acquisition of the same non-reentrant lock "
    "(threading.Lock self-deadlocks on re-entry)",
    "RPR032": "method called under a held lock re-acquires the same lock "
    "(self-deadlock across methods)",
    "RPR040": "except block absorbing a fault-path exception (WorkerError/"
    "WorkerTaskError/InjectedFault) without re-recording ledger deltas or "
    "re-raising (resilience must never be silent on the op ledger)",
}

#: Calls that mutate their receiver in place (the write set of the lock
#: consistency analysis and the reason dict/list/set state needs a lock).
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: NumPy constructors whose dtype defaults to float64.
_DTYPE_DEFAULTING = frozenset({"zeros", "ones", "empty", "full", "arange"})

#: Legacy global-state RNG entry points of numpy.random.
_LEGACY_NP_RANDOM = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "standard_normal",
        "uniform",
        "normal",
        "choice",
        "shuffle",
        "permutation",
        "seed",
    }
)

#: Order-producing stdlib ``random`` functions (module-level = global state).
_STDLIB_RANDOM = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "gauss",
        "normalvariate",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "seed",
    }
)

#: Callables that perform matmul/matvec work inside an engine.
_MATMUL_ATTRS = frozenset({"matmul", "einsum", "tensordot", "dot"})

#: Lock constructors: the stdlib ones plus this repo's instrumented factory.
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "named_lock"})
_REENTRANT_FACTORIES = frozenset({"RLock"})


@dataclasses.dataclass
class ParsedModule:
    """One analysed source file: path, AST, source lines and scope flags."""

    path: str  # POSIX path as reported in findings
    tree: ast.Module
    lines: Sequence[str]
    is_hot_path: bool
    is_kernel: bool
    is_engine: bool


def _finding(module: ParsedModule, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
    )


# ---------------------------------------------------------------------------
# small AST helpers
# ---------------------------------------------------------------------------


def _is_numpy_attr(node: ast.AST, attrs: frozenset) -> Optional[str]:
    """Return the attribute name when ``node`` is ``np.<attr>``/``numpy.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr in attrs
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    ):
        return node.attr
    return None


def _has_keyword(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _is_set_like(node: ast.AST, set_names: Set[str]) -> bool:
    """True when ``node`` evaluates to a set (literal, call, op or alias)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_like(node.left, set_names) or _is_set_like(
            node.right, set_names
        )
    return False


def _self_attr(node: ast.AST) -> Optional[str]:
    """Return ``X`` when ``node`` is ``self.X`` (possibly nested deeper)."""
    while isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return node.attr
        node = node.value
    return None


def _is_lock_call(node: ast.AST) -> Optional[bool]:
    """Lock construction?  Returns reentrancy (True = RLock) or None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "threading" and func.attr in _LOCK_FACTORIES:
            name = func.attr
    elif isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        name = func.id
    if name is None:
        return None
    return name in _REENTRANT_FACTORIES


# ---------------------------------------------------------------------------
# RPR001 / RPR002 — dtype discipline
# ---------------------------------------------------------------------------


def rule_dtype_less_construction(module: ParsedModule) -> Iterator[Finding]:
    """RPR001: dtype-less NumPy construction in the INT8 hot path."""
    if not module.is_hot_path:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _is_numpy_attr(node.func, _DTYPE_DEFAULTING)
        if name is None:
            continue
        if _has_keyword(node, "dtype"):
            continue
        yield _finding(
            module,
            node,
            "RPR001",
            f"np.{name}(...) without an explicit dtype in the INT8 hot path "
            "(defaults to float64; pin the dtype the overflow proof assumes)",
        )


def _ambiguous_dtype_expr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name) and node.id in ("int", "float"):
        return node.id
    if isinstance(node, ast.Constant) and node.value in ("int", "float"):
        return repr(node.value)
    return None


def rule_ambiguous_dtype(module: ParsedModule) -> Iterator[Finding]:
    """RPR002: builtin ``int``/``float`` used as a dtype in kernel modules."""
    if not module.is_kernel:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        culprit: Optional[str] = None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            culprit = _ambiguous_dtype_expr(node.args[0])
        if culprit is None:
            for kw in node.keywords:
                if kw.arg == "dtype":
                    culprit = _ambiguous_dtype_expr(kw.value)
        if culprit is not None:
            yield _finding(
                module,
                node,
                "RPR002",
                f"dtype {culprit} is width-ambiguous (builtin int maps to the "
                "platform C long); spell the exact NumPy dtype (np.int64, "
                "np.float64, ...)",
            )


# ---------------------------------------------------------------------------
# RPR010 / RPR011 / RPR012 — determinism discipline
# ---------------------------------------------------------------------------


def _scopes(tree: ast.Module) -> Iterator[Tuple[ast.AST, List[ast.stmt]]]:
    """Yield (scope node, body) for the module and every function in it."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _walk_scope(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


def rule_set_iteration(module: ParsedModule) -> Iterator[Finding]:
    """RPR010: iterating a set in a kernel module (hash-order dependent)."""
    if not module.is_kernel:
        return
    for _scope, body in _scopes(module.tree):
        set_names: Set[str] = set()
        # First pass, to fixpoint: names bound to set-like expressions in
        # this scope (assignment chains may appear in any lexical order).
        while True:
            grew = False
            for node in _walk_scope(body):
                if isinstance(node, ast.Assign) and _is_set_like(node.value, set_names):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id not in set_names:
                            set_names.add(target.id)
                            grew = True
            if not grew:
                break
        # Second pass: iteration points.
        for node in _walk_scope(body):
            iters: List[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_like(it, set_names):
                    yield _finding(
                        module,
                        it,
                        "RPR010",
                        "iteration over a set is hash-order dependent; results "
                        "that must be bit-identical need sorted(...) here",
                    )


def rule_unseeded_rng(module: ParsedModule) -> Iterator[Finding]:
    """RPR011: unseeded ``default_rng()`` / global-state RNG in library code."""
    has_random_import = any(
        isinstance(node, ast.Import)
        and any(alias.name == "random" for alias in node.names)
        for node in module.tree.body
    )
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "default_rng"
            and not node.args
            and not node.keywords
        ):
            yield _finding(
                module,
                node,
                "RPR011",
                "default_rng() without a seed draws OS entropy; library code "
                "must take an explicit seed for reproducibility",
            )
            continue
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _LEGACY_NP_RANDOM
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in ("np", "numpy")
        ):
            yield _finding(
                module,
                node,
                "RPR011",
                f"np.random.{func.attr}(...) uses the legacy global RNG state; "
                "pass a seeded np.random.default_rng(seed) through instead",
            )
            continue
        if (
            has_random_import
            and isinstance(func, ast.Attribute)
            and func.attr in _STDLIB_RANDOM
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
        ):
            yield _finding(
                module,
                node,
                "RPR011",
                f"random.{func.attr}(...) uses the process-global stdlib RNG; "
                "library code must derive randomness from an explicit seed",
            )


def rule_builtin_sum(module: ParsedModule) -> Iterator[Finding]:
    """RPR012: builtin ``sum()`` in kernel modules (order-sensitive floats)."""
    if not module.is_kernel:
        return
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
        ):
            yield _finding(
                module,
                node,
                "RPR012",
                "builtin sum() accumulates in argument order, which is not "
                "pinned for arbitrary iterables; kernel reductions must use "
                "np.sum/math.fsum over a fixed-order operand",
            )


# ---------------------------------------------------------------------------
# RPR020 — ledger discipline
# ---------------------------------------------------------------------------


def _does_matmul_work(func: ast.FunctionDef) -> Optional[ast.AST]:
    """Return the first node performing matmul/matvec work, if any."""
    for node in ast.walk(func):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            return node
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MATMUL_ATTRS:
                return node
            if node.func.attr.startswith("_compute") and _self_attr(node.func) is not None:
                return node
    return None


def _records_ledger(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr.startswith("record_")
        ):
            return True
    return False


def rule_ledger_discipline(module: ParsedModule) -> Iterator[Finding]:
    """RPR020: public engine methods doing matmul work must hit the ledger."""
    if not module.is_engine:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name.startswith("_"):
                continue  # entry points only; helpers are covered by callers
            work = _does_matmul_work(item)
            if work is not None and not _records_ledger(item):
                yield _finding(
                    module,
                    work,
                    "RPR020",
                    f"{node.name}.{item.name} performs matmul/matvec work but "
                    "never calls an OpCounter.record_* method; the op ledger "
                    "is the cross-path comparator and must see every product",
                )


# ---------------------------------------------------------------------------
# RPR040 — fault-path ledger discipline
# ---------------------------------------------------------------------------

#: Exceptions raised by the resilience machinery (an injection site firing,
#: a worker task failing, a worker process dying).  Catching one of these
#: IS the recovery path, and recoveries must reach the op ledger.
_FAULT_EXC_NAMES = frozenset({"WorkerError", "WorkerTaskError", "InjectedFault"})

#: Ledger entry points that re-record what a handled fault cost or skipped:
#: the fault_events histogram, counter absorption, or clone-ledger merging.
_FAULT_RECORDERS = frozenset({"record_fault_event", "absorb", "merge_counters"})


def _exception_names(type_expr: Optional[ast.AST]) -> Iterator[str]:
    """Names of the exception classes an ``except`` clause catches."""
    if type_expr is None:
        return
    nodes = type_expr.elts if isinstance(type_expr, ast.Tuple) else [type_expr]
    for node in nodes:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def rule_fault_ledger_discipline(module: ParsedModule) -> Iterator[Finding]:
    """RPR040: handlers absorbing fault exceptions must hit the ledger.

    An ``except`` clause catching a fault-path exception is a *recovery
    decision*: either the handler accounts for it on the op ledger (a
    ``record_fault_event``/``absorb``/``merge_counters`` call somewhere in
    its body) or it re-raises (possibly translated).  A handler doing
    neither swallows an infrastructure failure silently — exactly the
    failure mode the resilience layer promises cannot happen.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        caught = sorted(
            name for name in _exception_names(node.type) if name in _FAULT_EXC_NAMES
        )
        if not caught:
            continue
        body_nodes = [sub for stmt in node.body for sub in ast.walk(stmt)]
        reraises = any(isinstance(sub, ast.Raise) for sub in body_nodes)
        records = any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _FAULT_RECORDERS
            for sub in body_nodes
        )
        if not reraises and not records:
            yield _finding(
                module,
                node,
                "RPR040",
                f"except block catching {', '.join(caught)} absorbs a "
                "fault-path exception without re-recording ledger deltas "
                "(record_fault_event/absorb/merge_counters) or re-raising; "
                "recoveries must never be silent on the op ledger",
            )


# ---------------------------------------------------------------------------
# RPR030 / RPR031 / RPR032 — lock discipline
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _Write:
    attr: str
    node: ast.AST
    held: Tuple[str, ...]
    method: str


@dataclasses.dataclass
class _Acquire:
    lock: str
    node: ast.AST
    held: Tuple[str, ...]
    method: str


def _lock_name_of_with_item(item: ast.withitem, *, in_class: bool) -> Optional[str]:
    """The guarded-lock name of ``with self.X:`` / ``with LOCK:`` items."""
    expr = item.context_expr
    if in_class:
        attr = _self_attr(expr)
        if attr is not None and isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            return attr
        return None
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _written_names(node: ast.AST, *, in_class: bool) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (name, node) pairs for attribute/global writes at ``node``.

    ``in_class`` selects between ``self.X`` writes (class analysis) and
    bare-name writes (module-global analysis).  Covered forms: plain and
    augmented assignment, subscript stores, ``del x[...]`` and in-place
    mutator calls (``x.append(...)`` and friends).
    """

    def base_name(target: ast.AST) -> Optional[str]:
        while isinstance(target, ast.Subscript):
            target = target.value
        if in_class:
            return _self_attr(target)
        if isinstance(target, ast.Name):
            return target.id
        return None

    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            elements = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            for element in elements:
                name = base_name(element)
                if name is not None:
                    yield name, element
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            name = base_name(target)
            if name is not None:
                yield name, target
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATOR_METHODS:
            name = base_name(node.func.value)
            if name is not None:
                yield name, node


def _collect_lock_usage(
    funcs: Sequence[Tuple[str, ast.AST]],
    lock_names: Set[str],
    *,
    in_class: bool,
) -> Tuple[List[_Write], List[_Acquire]]:
    """Walk functions tracking the lexical with-held lock stack."""
    writes: List[_Write] = []
    acquires: List[_Acquire] = []

    def visit(node: ast.AST, held: Tuple[str, ...], method: str) -> None:
        if isinstance(node, ast.With):
            entered = list(held)
            for item in node.items:
                lock = _lock_name_of_with_item(item, in_class=in_class)
                if lock is not None and lock in lock_names:
                    acquires.append(_Acquire(lock, item.context_expr, tuple(entered), method))
                    entered.append(lock)
            for stmt in node.body:
                visit(stmt, tuple(entered), method)
            return
        for name, site in _written_names(node, in_class=in_class):
            writes.append(_Write(name, site, held, method))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: fresh held stack (it runs later, not here).
            for stmt in node.body:
                visit(stmt, (), method)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, held, method)

    for method_name, func in funcs:
        body = func.body if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)) else [func]
        for stmt in body:
            visit(stmt, (), method_name)
    return writes, acquires


def _consistency_findings(
    module: ParsedModule,
    writes: Sequence[_Write],
    lock_names: Set[str],
    *,
    owner: str,
) -> Iterator[Finding]:
    """The RPR030 consistency inference over a set of collected writes."""
    guarded: Dict[str, Set[str]] = {}
    for write in writes:
        if write.attr in lock_names:
            continue
        for lock in write.held:
            guarded.setdefault(write.attr, set()).add(lock)
    for write in writes:
        if write.method in ("__init__", "__new__", "__del__", "<module>"):
            continue
        locks = guarded.get(write.attr)
        if not locks:
            continue
        if not set(write.held) & locks:
            lock_list = ", ".join(sorted(locks))
            yield _finding(
                module,
                write.node,
                "RPR030",
                f"{owner}{write.attr} is mutated under {lock_list} elsewhere "
                f"but written here without it (in {write.method}); take the "
                "lock or document the attribute as unshared",
            )


def rule_lock_discipline(module: ParsedModule) -> Iterator[Finding]:
    """RPR030/RPR031/RPR032 over classes and module-level locks."""
    # ---- class-level locks -------------------------------------------------
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = [
            (item.name, item)
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs: Set[str] = set()
        reentrant: Set[str] = set()
        for _name, func in methods:
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    kind = _is_lock_call(node.value)
                    if kind is None:
                        continue
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            lock_attrs.add(attr)
                            if kind:
                                reentrant.add(attr)
        if not lock_attrs:
            continue
        writes, acquires = _collect_lock_usage(methods, lock_attrs, in_class=True)
        yield from _consistency_findings(
            module, writes, lock_attrs, owner=f"{cls.name}."
        )
        # RPR031: nested lexical re-acquisition of a non-reentrant lock.
        for acq in acquires:
            if acq.lock in acq.held and acq.lock not in reentrant:
                yield _finding(
                    module,
                    acq.node,
                    "RPR031",
                    f"{cls.name}.{acq.method} re-acquires non-reentrant lock "
                    f"self.{acq.lock} while already holding it: guaranteed "
                    "self-deadlock",
                )
        # RPR032: held-lock call into a sibling method that re-acquires it.
        acquired_by_method: Dict[str, Set[str]] = {}
        for acq in acquires:
            acquired_by_method.setdefault(acq.method, set()).add(acq.lock)
        for method_name, func in methods:
            calls_under: List[Tuple[str, ast.AST, Tuple[str, ...]]] = []

            def visit(node: ast.AST, held: Tuple[str, ...]) -> None:
                if isinstance(node, ast.With):
                    entered = list(held)
                    for item in node.items:
                        lock = _lock_name_of_with_item(item, in_class=True)
                        if lock is not None and lock in lock_attrs:
                            entered.append(lock)
                    for stmt in node.body:
                        visit(stmt, tuple(entered))
                    return
                if isinstance(node, ast.Call):
                    callee = None
                    if isinstance(node.func, ast.Attribute) and isinstance(
                        node.func.value, ast.Name
                    ):
                        if node.func.value.id == "self":
                            callee = node.func.attr
                    if callee is not None and held:
                        calls_under.append((callee, node, held))
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    return
                for child in ast.iter_child_nodes(node):
                    visit(child, held)

            for stmt in func.body:
                visit(stmt, ())
            for callee, node, held in calls_under:
                needed = acquired_by_method.get(callee, set())
                clash = needed & set(held) - reentrant
                if clash:
                    lock = sorted(clash)[0]
                    yield _finding(
                        module,
                        node,
                        "RPR032",
                        f"{cls.name}.{method_name} calls self.{callee}() while "
                        f"holding self.{lock}, which {callee} re-acquires: "
                        "self-deadlock",
                    )

    # ---- module-level locks ------------------------------------------------
    module_locks: Set[str] = set()
    module_reentrant: Set[str] = set()
    module_globals: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            kind = _is_lock_call(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module_globals.add(target.id)
                    if kind is not None:
                        module_locks.add(target.id)
                        if kind:
                            module_reentrant.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            module_globals.add(node.target.id)
    if not module_locks:
        return
    funcs: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            funcs.append((node.name, node))
    writes, acquires = _collect_lock_usage(funcs, module_locks, in_class=False)
    # Only module-global names count as shared state (locals are thread-own).
    writes = [w for w in writes if w.attr in module_globals]
    yield from _consistency_findings(module, writes, module_locks, owner="module-level ")
    for acq in acquires:
        if acq.lock in acq.held and acq.lock not in module_reentrant:
            yield _finding(
                module,
                acq.node,
                "RPR031",
                f"{acq.method} re-acquires non-reentrant module lock "
                f"{acq.lock} while already holding it: guaranteed self-deadlock",
            )


#: Every rule, in report order.
RULES = (
    rule_dtype_less_construction,
    rule_ambiguous_dtype,
    rule_set_iteration,
    rule_unseeded_rng,
    rule_builtin_sum,
    rule_ledger_discipline,
    rule_fault_ledger_discipline,
    rule_lock_discipline,
)


def run_rules(module: ParsedModule, config: LintConfig) -> List[Finding]:
    """Run every enabled rule over one parsed module."""
    findings: List[Finding] = []
    for rule in RULES:
        for finding in rule(module):
            if config.rule_enabled(finding.code):
                findings.append(finding)
    return findings
