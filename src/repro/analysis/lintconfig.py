"""Configuration of the ``repro lint`` analyser (``[tool.reprolint]``).

The rules are *domain*-aware: which checks apply to a file depends on what
the file is to the residue stack.  Three scopes exist, each a list of
path fragments matched against the file's POSIX path:

``hot-path-modules``
    The INT8 hot path, where a dtype-less NumPy construction or an
    implicit float64 promotion silently breaks the proven overflow
    windows (dtype rules RPR001/RPR002).
``kernel-modules``
    Modules whose results must stay bit-identical across fused/unfused,
    serial/parallel and cached/cold execution (determinism rules
    RPR010/RPR012; RPR002 also applies here).
``engine-modules``
    Modules hosting :class:`~repro.engines.base.MatrixEngine` entry
    points, whose matmul/matvec work must be ledger-accounted (RPR020).

The lock rules (RPR030/RPR031/RPR032) and the RNG rule (RPR011) apply
everywhere.  Defaults below encode this repository's layout; a
``[tool.reprolint]`` table in ``pyproject.toml`` overrides any field
(keys use the dashed spelling, e.g. ``hot-path-modules``).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["LintConfig", "load_config", "find_pyproject"]

#: The INT8 hot path: modules where every array construction must pin its
#: dtype (the k < 2**17 / k*2**14 < 2**31 overflow proofs assume exact
#: integer-valued float64 and INT8/INT32 operands, never a default dtype).
DEFAULT_HOT_PATH = (
    "repro/crt/",
    "repro/engines/int8.py",
    "repro/core/accumulation.py",
)

#: Bit-identity kernels: residue conversion, CRT accumulation, engines and
#: the runtime that reorders their work across workers.
DEFAULT_KERNEL = (
    "repro/crt/",
    "repro/core/",
    "repro/engines/",
    "repro/runtime/",
)

#: Engine modules whose public entry points must record ledger work.
DEFAULT_ENGINE = ("repro/engines/",)

#: Paths never analysed (fragments matched like the scopes).
DEFAULT_EXCLUDE: Tuple[str, ...] = ("__pycache__",)


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Resolved analyser configuration (see module docstring)."""

    hot_path_modules: Tuple[str, ...] = DEFAULT_HOT_PATH
    kernel_modules: Tuple[str, ...] = DEFAULT_KERNEL
    engine_modules: Tuple[str, ...] = DEFAULT_ENGINE
    exclude: Tuple[str, ...] = DEFAULT_EXCLUDE
    select: Tuple[str, ...] = ()  # empty = every rule

    # -- scope predicates ----------------------------------------------------
    @staticmethod
    def _matches(path: str, fragments: Sequence[str]) -> bool:
        return any(fragment in path for fragment in fragments)

    def is_hot_path(self, path: str) -> bool:
        return self._matches(path, self.hot_path_modules)

    def is_kernel(self, path: str) -> bool:
        return self._matches(path, self.kernel_modules)

    def is_engine(self, path: str) -> bool:
        return self._matches(path, self.engine_modules)

    def is_excluded(self, path: str) -> bool:
        return self._matches(path, self.exclude)

    def rule_enabled(self, code: str) -> bool:
        if not self.select:
            return True
        return any(code.startswith(prefix) for prefix in self.select)


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the first directory with a pyproject.toml."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def _coerce_str_tuple(value: object, key: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ValueError(f"[tool.reprolint] {key} must be a list of strings")
    return tuple(value)


def load_config(
    pyproject: Optional[Path] = None, select: Sequence[str] = ()
) -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.reprolint]``, if present.

    Missing file, missing table and missing keys all fall back to the
    defaults, so the analyser works on a bare checkout; a malformed table
    raises ``ValueError`` (a misconfigured linter must fail loudly, not
    silently analyse the wrong scope).
    """
    table: Dict[str, object] = {}
    if pyproject is not None and pyproject.is_file():
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python 3.10 without tomli
            tomllib = None
        if tomllib is not None:
            with open(pyproject, "rb") as handle:
                document = tomllib.load(handle)
            tool = document.get("tool", {})
            if not isinstance(tool, dict):
                raise ValueError("pyproject [tool] is not a table")
            raw = tool.get("reprolint", {})
            if not isinstance(raw, dict):
                raise ValueError("[tool.reprolint] is not a table")
            table = raw

    kwargs: Dict[str, object] = {}
    for toml_key, field in (
        ("hot-path-modules", "hot_path_modules"),
        ("kernel-modules", "kernel_modules"),
        ("engine-modules", "engine_modules"),
        ("exclude", "exclude"),
        ("select", "select"),
    ):
        if toml_key in table:
            kwargs[field] = _coerce_str_tuple(table[toml_key], toml_key)
    unknown = set(table) - {
        "hot-path-modules",
        "kernel-modules",
        "engine-modules",
        "exclude",
        "select",
    }
    if unknown:
        raise ValueError(f"unknown [tool.reprolint] key(s): {sorted(unknown)}")
    if select:
        kwargs["select"] = tuple(select)
    return LintConfig(**kwargs)  # type: ignore[arg-type]
