"""Orchestration of ``repro lint``: file collection, parsing, suppression.

:func:`run_lint` is the programmatic entry point (the CLI verb and the
``repro selfcheck`` lint step both call it): collect ``.py`` files from
the given paths, parse each once, classify it against the
``[tool.reprolint]`` scopes, run every rule and filter findings through
``# noqa: RPR0xx`` suppressions.  Findings come back sorted and
de-duplicated; rendering is :mod:`repro.analysis.findings`' job.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding
from .lintconfig import LintConfig, find_pyproject, load_config
from .rules import ParsedModule, run_rules

__all__ = ["run_lint", "collect_files", "parse_module"]

#: ``# noqa`` (suppress everything) or ``# noqa: RPR001, RPR030`` (listed).
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE)


def collect_files(paths: Sequence[Path], config: LintConfig) -> List[Path]:
    """Expand files/directories into the sorted list of analysable files."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            posix = candidate.as_posix()
            if config.is_excluded(posix):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def _noqa_codes(lines: Sequence[str]) -> dict:
    """Map line number -> frozenset of suppressed codes (empty = all)."""
    suppressions = {}
    for number, line in enumerate(lines, start=1):
        if "#" not in line or "noqa" not in line.lower():
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        raw = match.group("codes")
        codes = (
            frozenset(code.strip().upper() for code in raw.split(",") if code.strip())
            if raw
            else frozenset()
        )
        suppressions[number] = codes
    return suppressions


def parse_module(path: Path, config: LintConfig) -> Optional[ParsedModule]:
    """Parse one file into a :class:`ParsedModule`, or None on syntax error.

    A file the analyser cannot parse is reported as a finding by the
    caller (:func:`run_lint`) rather than silently skipped.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    posix = path.as_posix()
    return ParsedModule(
        path=posix,
        tree=tree,
        lines=source.splitlines(),
        is_hot_path=config.is_hot_path(posix),
        is_kernel=config.is_kernel(posix),
        is_engine=config.is_engine(posix),
    )


def _suppressed(finding: Finding, suppressions: dict) -> bool:
    codes = suppressions.get(finding.line)
    if codes is None:
        return False
    return not codes or finding.code in codes


def run_lint(
    paths: Sequence[object],
    config: Optional[LintConfig] = None,
    select: Sequence[str] = (),
) -> Tuple[List[Finding], int]:
    """Analyse ``paths``; return ``(findings, files_checked)``.

    ``config=None`` loads ``[tool.reprolint]`` from the nearest
    ``pyproject.toml`` above the first path (falling back to the built-in
    defaults).  ``select`` narrows to the listed code prefixes.
    """
    path_objects = [Path(p) for p in paths]
    if config is None:
        anchor = path_objects[0] if path_objects else Path.cwd()
        config = load_config(find_pyproject(anchor), select=select)
    elif select:
        config = LintConfig(
            hot_path_modules=config.hot_path_modules,
            kernel_modules=config.kernel_modules,
            engine_modules=config.engine_modules,
            exclude=config.exclude,
            select=tuple(select),
        )

    findings: Set[Finding] = set()
    files = collect_files(path_objects, config)
    for path in files:
        try:
            module = parse_module(path, config)
        except SyntaxError as exc:
            findings.add(
                Finding(
                    path=path.as_posix(),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) or 1,
                    code="RPR000",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        if module is None:
            continue
        suppressions = _noqa_codes(module.lines)
        for finding in run_rules(module, config):
            if not _suppressed(finding, suppressions):
                findings.add(finding)
    return sorted(findings), len(files)
