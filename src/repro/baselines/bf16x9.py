"""BF16x9 SGEMM emulation (cuBLAS 12.9 ``CUBLAS_COMPUTE_32F_EMULATED_16BFX9``).

Section 2 of the paper describes the scheme: each FP32 operand is split into
three BF16 matrices::

    A = A1 + 2^-8 A2 + 2^-16 A3,      B = B1 + 2^-8 B2 + 2^-16 B3

(the splits capture successive 8-bit chunks of the 24-bit FP32 significand),
and the product is assembled from all nine BF16 GEMMs::

    AB = Σ_{i,j} 2^{-8(i+j-2)} A_i B_j

with FP32 accumulation.  The paper's Figure 3 shows BF16x9 matching native
SGEMM accuracy, and Figure 5 shows throughput comparable to SGEMM — both of
which this implementation reproduces through the BF16 engine.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..engines.lowprec_fp import Bf16MatrixEngine
from ..formats.lowprec import round_to_bf16
from ..utils.validation import check_gemm_operands

__all__ = ["split_bf16x3", "bf16x9_gemm"]

#: Number of BF16 components per operand.
_NUM_SPLITS = 3
#: Bits captured per split (BF16 significand width).
_SPLIT_SHIFT = 8


def split_bf16x3(x: np.ndarray) -> List[np.ndarray]:
    """Split an FP32 matrix into three BF16 components.

    Returns ``[X1, X2, X3]`` (stored as float32 rounded onto the BF16 grid)
    such that ``X ≈ X1 + 2^-8 X2 + 2^-16 X3``; the residual after three
    splits is below the FP32 rounding level of each element.
    """
    x = np.asarray(x, dtype=np.float32)
    splits: List[np.ndarray] = []
    residual = x.astype(np.float64)
    for level in range(_NUM_SPLITS):
        scale = 2.0 ** (_SPLIT_SHIFT * level)
        component = round_to_bf16((residual * scale).astype(np.float32))
        splits.append(component)
        residual = residual - component.astype(np.float64) / scale
    return splits


def bf16x9_gemm(
    a: np.ndarray, b: np.ndarray, engine: Bf16MatrixEngine | None = None
) -> np.ndarray:
    """Emulated SGEMM via nine BF16 products (the ``BF16x9`` baseline)."""
    a, b = check_gemm_operands(a, b, dtype=np.float32)
    engine = engine or Bf16MatrixEngine()
    a_parts = split_bf16x3(a)
    b_parts = split_bf16x3(b)
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.float32)
    # Accumulate the most significant contributions last so the FP32 sum
    # loses as little as possible of the small terms.
    terms: List[Tuple[int, np.ndarray]] = []
    for i, a_i in enumerate(a_parts):
        for j, b_j in enumerate(b_parts):
            weight_exp = -_SPLIT_SHIFT * (i + j)
            product = engine.matmul(a_i, b_j)
            terms.append((weight_exp, product))
    for weight_exp, product in sorted(terms, key=lambda t: t[0]):
        out += np.ldexp(product, weight_exp).astype(np.float32)
    return out
