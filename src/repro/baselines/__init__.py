"""Baseline GEMM-emulation methods compared against in Section 5.

Every method of the paper's evaluation is available here under its paper
name through :func:`repro.baselines.registry.get_method`:

==================  ====================================================
paper name          implementation
==================  ====================================================
``DGEMM``           native FP64 GEMM (:mod:`repro.baselines.native`)
``SGEMM``           native FP32 GEMM
``TF32GEMM``        TF32 tensor-core GEMM (:mod:`repro.baselines.tf32gemm`)
``BF16x9``          3x3 BF16 product decomposition (:mod:`repro.baselines.bf16x9`)
``cuMpSGEMM``       FP16 split + error correction (:mod:`repro.baselines.cumpsgemm`)
``ozIMMU_EF-S``     Ozaki scheme I on INT8 with S slices (:mod:`repro.baselines.ozaki1`)
``OS II-fast-N``    Ozaki scheme II, fast mode (:mod:`repro.core.gemm`)
``OS II-accu-N``    Ozaki scheme II, accurate mode
==================  ====================================================
"""

from __future__ import annotations

from .bf16x9 import bf16x9_gemm
from .cumpsgemm import cumpsgemm_fp16tcec
from .native import native_dgemm, native_sgemm
from .ozaki1 import Ozaki1Config, ozimmu_gemm
from .registry import MethodSpec, available_methods, get_method
from .tf32gemm import tf32_gemm

__all__ = [
    "bf16x9_gemm",
    "cumpsgemm_fp16tcec",
    "native_dgemm",
    "native_sgemm",
    "Ozaki1Config",
    "ozimmu_gemm",
    "MethodSpec",
    "available_methods",
    "get_method",
    "tf32_gemm",
]
