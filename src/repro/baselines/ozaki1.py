"""Ozaki scheme I on INT8 matrix engines (the ``ozIMMU_EF-S`` baseline).

Ozaki scheme I [Ozaki et al. 2012] splits the *significands* of the inputs
into ``S`` slices such that every cross product of slices is exact on the
low-precision engine, then sums the slice products in high precision.  The
INT8 incarnation (ozIMMU [Ootomo et al. 2024], accelerated in
[Uchino et al. 2025]) is the strongest prior DGEMM-emulation baseline in the
paper's evaluation (Figures 4, 6, 8).

Implementation outline (error-free / "EF" variant):

1. every row of ``A`` (column of ``B``) is scaled by a power of two so its
   largest magnitude lies in ``[1/2, 1)``;
2. each scaled element is cut into ``S`` consecutive chunks of ``w`` bits
   (``w = min(7, ⌊(31 − ⌈log2 k⌉)/2⌋)``), each an INT8 integer, so a single
   INT8 GEMM of any two chunks accumulates exactly in INT32;
3. the products ``D^A_s · D^B_t`` for ``s + t ≤ S + 1`` are evaluated on the
   INT8 engine (``S(S+1)/2`` GEMMs) and combined in FP64 with weights
   ``2^{-(s+t)w}``;
4. the row/column scalings are undone.

The per-element truncation error after ``S`` slices is ``2^{-S·w}`` relative
to the row scale, so ``S ≈ 8–9`` reaches FP64-level accuracy — requiring
``S(S+1)/2 ≈ 36–45`` INT8 GEMMs where Ozaki scheme II needs ``N ≈ 14–15``.
That gap is exactly the ">2x higher performance" headline of the paper.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..config import MAX_K_WITHOUT_BLOCKING
from ..engines.base import MatrixEngine
from ..engines.int8 import Int8MatrixEngine
from ..errors import ConfigurationError
from ..utils.fp import exponent_floor, pow2
from ..utils.validation import check_gemm_operands

__all__ = ["Ozaki1Config", "slice_width", "split_into_slices", "ozimmu_gemm"]


@dataclasses.dataclass(frozen=True)
class Ozaki1Config:
    """Configuration of an Ozaki scheme I emulated GEMM.

    Parameters
    ----------
    num_slices:
        Number of significand slices ``S`` (2..16).  DGEMM-level accuracy
        needs 8–9 slices for HPL-like matrices.
    full_products:
        If True, evaluate all ``S*S`` slice products instead of the
        triangular ``S(S+1)/2`` subset.  The triangular subset (default)
        matches ozIMMU_EF and the operation counts used in the paper.
    """

    num_slices: int = 9
    full_products: bool = False

    def __post_init__(self) -> None:
        s = int(self.num_slices)
        if not (2 <= s <= 16):
            raise ConfigurationError(f"num_slices must be in [2, 16], got {s}")
        object.__setattr__(self, "num_slices", s)

    @property
    def num_int8_gemms(self) -> int:
        """Number of INT8 GEMMs the configuration issues."""
        s = self.num_slices
        return s * s if self.full_products else s * (s + 1) // 2

    @property
    def method_name(self) -> str:
        """Paper-style method name, e.g. ``"ozIMMU_EF-9"``."""
        return f"ozIMMU_EF-{self.num_slices}"


def slice_width(k: int) -> int:
    """Bits per slice so that one INT8 GEMM is exact in INT32.

    Each slice is an integer of magnitude below ``2^w``; a product of two
    slices summed over ``k`` terms is below ``k · 2^{2w}``, which must stay
    below ``2^31``.  The INT8 input range additionally caps ``w`` at 7.
    """
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    head = 31 - int(np.ceil(np.log2(max(k, 2))))
    return max(1, min(7, head // 2))


def _row_scales(x: np.ndarray, axis: int) -> np.ndarray:
    """Power-of-two scale per row/column mapping max |x| into [1/2, 1)."""
    max_abs = np.max(np.abs(x), axis=axis)
    exps = np.where(max_abs > 0, -(exponent_floor(max_abs) + 1), 0)
    return pow2(exps.astype(np.int64))


def split_into_slices(
    x_scaled: np.ndarray, num_slices: int, width: int
) -> List[np.ndarray]:
    """Split a matrix with entries in (-1, 1) into INT8 slice matrices.

    Returns ``[D_1, ..., D_S]`` (int8) such that
    ``x ≈ Σ_s D_s · 2^{-s·width}`` with the residual below ``2^{-S·width}``
    in magnitude.  The extraction is error-free: each slice is the
    truncation of the current residual shifted by ``width`` bits.
    """
    residual = np.asarray(x_scaled, dtype=np.float64).copy()
    slices: List[np.ndarray] = []
    for s in range(1, num_slices + 1):
        shifted = np.ldexp(residual, width * s)
        chunk = np.trunc(shifted)
        slices.append(chunk.astype(np.int8))
        residual = residual - np.ldexp(chunk, -width * s)
    return slices


def ozimmu_gemm(
    a: np.ndarray,
    b: np.ndarray,
    config: Ozaki1Config | int = 9,
    engine: MatrixEngine | None = None,
) -> np.ndarray:
    """Emulated DGEMM via Ozaki scheme I with INT8 slices (``ozIMMU_EF-S``).

    ``config`` may be an :class:`Ozaki1Config` or simply the slice count.
    """
    if isinstance(config, int):
        config = Ozaki1Config(num_slices=config)
    engine = engine or Int8MatrixEngine()
    a, b = check_gemm_operands(a, b, dtype=np.float64)
    m, k = a.shape
    n = b.shape[1]
    width = slice_width(min(k, MAX_K_WITHOUT_BLOCKING))

    row_scale = _row_scales(a, axis=1)
    col_scale = _row_scales(b, axis=0)
    a_scaled = a * row_scale[:, None]
    b_scaled = b * col_scale[None, :]

    a_slices = split_into_slices(a_scaled, config.num_slices, width)
    b_slices = split_into_slices(b_scaled, config.num_slices, width)

    c_acc = np.zeros((m, n), dtype=np.float64)
    s_max = config.num_slices
    block = MAX_K_WITHOUT_BLOCKING
    for s in range(1, s_max + 1):
        for t in range(1, s_max + 1):
            if not config.full_products and s + t > s_max + 1:
                continue
            partial = np.zeros((m, n), dtype=np.float64)
            for start in range(0, k, block):
                stop = min(start + block, k)
                prod = engine.matmul(a_slices[s - 1][:, start:stop], b_slices[t - 1][start:stop, :])
                partial += prod.astype(np.float64)
            c_acc += np.ldexp(partial, -width * (s + t))

    inv_row = 1.0 / row_scale
    inv_col = 1.0 / col_scale
    return c_acc * inv_row[:, None] * inv_col[None, :]
