"""cuMpSGEMM-style SGEMM emulation on FP16 tensor cores.

The paper compares against cuMpSGEMM in its ``FP16TCEC_SCALING`` mode
(Section 2): each FP32 operand is decomposed into two FP16 matrices — the
leading half and a scaled correction term that restores the significand bits
FP16 cannot hold — and the product is assembled from three FP16 tensor-core
GEMMs with FP32 accumulation::

    A ≈ A1 + 2^-11 A2,     B ≈ B1 + 2^-11 B2
    AB ≈ A1 B1 + 2^-11 (A1 B2 + A2 B1)

The 2^11 scaling of the correction terms keeps them inside FP16's narrow
exponent range (this is the "SCALING" part of the mode name); the explicit
error-correction term is the "EC" part.  Per-row/column power-of-two
pre-scaling keeps the leading terms away from FP16 overflow/underflow.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..engines.lowprec_fp import Fp16MatrixEngine
from ..formats.lowprec import round_to_fp16
from ..utils.fp import exponent_floor, pow2
from ..utils.validation import check_gemm_operands

__all__ = ["split_fp16_with_correction", "cumpsgemm_fp16tcec"]

#: Number of significand bits recovered by the correction term.
_CORRECTION_SHIFT = 11


def _row_scales(x: np.ndarray, axis: int) -> np.ndarray:
    """Power-of-two scales mapping each row/column's max magnitude near 1.

    FP16 overflows beyond 65504 and loses precision below 2^-14; scaling
    each row of A (column of B) so its largest magnitude lies in [1, 2)
    keeps both the leading and the correction terms well inside the safe
    range, mirroring cuMpSGEMM's dynamic scaling.
    """
    max_abs = np.max(np.abs(x), axis=axis)
    exps = np.where(max_abs > 0, -exponent_floor(max_abs), 0)
    return pow2(exps.astype(np.int64))


def split_fp16_with_correction(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split an FP32 matrix into leading FP16 part and scaled FP16 correction.

    Returns ``(X1, X2)`` with ``X ≈ X1 + 2^-11 X2`` (both stored as FP16).
    """
    x = np.asarray(x, dtype=np.float32)
    x1 = round_to_fp16(x)
    residual = x.astype(np.float64) - x1.astype(np.float64)
    x2 = round_to_fp16((residual * 2.0**_CORRECTION_SHIFT).astype(np.float32))
    return x1, x2


def cumpsgemm_fp16tcec(
    a: np.ndarray, b: np.ndarray, engine: Fp16MatrixEngine | None = None
) -> np.ndarray:
    """Emulated SGEMM via FP16 tensor cores with error correction."""
    a, b = check_gemm_operands(a, b, dtype=np.float32)
    engine = engine or Fp16MatrixEngine()

    row_scale = _row_scales(a, axis=1)
    col_scale = _row_scales(b, axis=0)
    a_scaled = (a * row_scale[:, None]).astype(np.float32)
    b_scaled = (b * col_scale[None, :]).astype(np.float32)

    a1, a2 = split_fp16_with_correction(a_scaled)
    b1, b2 = split_fp16_with_correction(b_scaled)

    main = engine.matmul(a1, b1)
    corr = engine.matmul(a1, b2) + engine.matmul(a2, b1)
    c_scaled = main + np.ldexp(corr, -_CORRECTION_SHIFT).astype(np.float32)

    inv_row = (1.0 / row_scale).astype(np.float64)
    inv_col = (1.0 / col_scale).astype(np.float64)
    return (c_scaled.astype(np.float64) * inv_row[:, None] * inv_col[None, :]).astype(
        np.float32
    )
