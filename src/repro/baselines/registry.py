"""Method registry: resolve the paper's method names to callables.

The evaluation harness (:mod:`repro.harness`) and the performance model
refer to methods by the names used in Section 5 of the paper:
``"DGEMM"``, ``"SGEMM"``, ``"TF32GEMM"``, ``"BF16x9"``, ``"cuMpSGEMM"``,
``"ozIMMU_EF-9"``, ``"OS II-fast-14"``, ``"OS II-accu-8"``, ...
:func:`get_method` parses such a name and returns a :class:`MethodSpec`
bundling the callable with the metadata the harness and the cost model need.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Callable, Optional

import numpy as np

from ..config import ComputeMode, Ozaki2Config
from ..core.gemm import ozaki2_gemm
from ..errors import ConfigurationError
from ..types import FP32, FP64, Format
from .bf16x9 import bf16x9_gemm
from .cumpsgemm import cumpsgemm_fp16tcec
from .native import native_dgemm, native_sgemm
from .ozaki1 import Ozaki1Config, ozimmu_gemm
from .tf32gemm import tf32_gemm

__all__ = ["MethodSpec", "get_method", "available_methods"]

_OS2_PATTERN = re.compile(r"^OS\s*II-(fast|accu(?:rate)?)-(\d+)$", re.IGNORECASE)
_OZIMMU_PATTERN = re.compile(r"^ozIMMU(?:_EF)?-(\d+)$", re.IGNORECASE)


@dataclasses.dataclass(frozen=True)
class MethodSpec:
    """A resolved GEMM method.

    Attributes
    ----------
    name:
        Canonical paper-style name.
    family:
        One of ``"native"``, ``"tf32"``, ``"bf16x9"``, ``"cumpsgemm"``,
        ``"ozimmu"``, ``"ozaki2"`` — used by the cost model.
    target:
        The precision the method emulates / delivers (FP64 or FP32).
    run:
        Callable ``run(a, b) -> C``.
    num_moduli / num_slices / mode:
        Family-specific parameters (None when not applicable).
    """

    name: str
    family: str
    target: Format
    run: Callable[[np.ndarray, np.ndarray], np.ndarray]
    num_moduli: Optional[int] = None
    num_slices: Optional[int] = None
    mode: Optional[ComputeMode] = None

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.run(a, b)


def _ozaki2_spec(name: str, mode_str: str, num_moduli: int, target: Format) -> MethodSpec:
    mode = ComputeMode.parse(mode_str)
    config = Ozaki2Config(precision=target, num_moduli=num_moduli, mode=mode)

    def run(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ozaki2_gemm(a, b, config=config)

    mode_label = "fast" if mode is ComputeMode.FAST else "accu"
    canonical = f"OS II-{mode_label}-{num_moduli}"
    return MethodSpec(
        name=canonical,
        family="ozaki2",
        target=target,
        run=run,
        num_moduli=num_moduli,
        mode=mode,
    )


def get_method(name: str, target: "Format | str" = FP64) -> MethodSpec:
    """Resolve a paper-style method name to a :class:`MethodSpec`.

    ``target`` selects the emulation target for the Ozaki scheme II entries
    (``"OS II-fast-8"`` can emulate either DGEMM or SGEMM depending on the
    experiment); it is ignored by methods with a fixed output precision.
    """
    from ..types import get_format

    target_fmt = get_format(target)
    key = str(name).strip()

    if key.upper() == "DGEMM":
        return MethodSpec("DGEMM", "native", FP64, native_dgemm)
    if key.upper() == "SGEMM":
        return MethodSpec("SGEMM", "native", FP32, native_sgemm)
    if key.upper() == "TF32GEMM":
        return MethodSpec("TF32GEMM", "tf32", FP32, tf32_gemm)
    if key.upper() == "BF16X9":
        return MethodSpec("BF16x9", "bf16x9", FP32, bf16x9_gemm)
    if key.lower() in ("cumpsgemm", "cumpsgemm_fp16tcec"):
        return MethodSpec("cuMpSGEMM", "cumpsgemm", FP32, cumpsgemm_fp16tcec)

    oz1 = _OZIMMU_PATTERN.match(key)
    if oz1:
        num_slices = int(oz1.group(1))
        config = Ozaki1Config(num_slices=num_slices)

        def run(a: np.ndarray, b: np.ndarray, _cfg=config) -> np.ndarray:
            return ozimmu_gemm(a, b, config=_cfg)

        return MethodSpec(
            config.method_name, "ozimmu", FP64, run, num_slices=num_slices
        )

    os2 = _OS2_PATTERN.match(key)
    if os2:
        return _ozaki2_spec(key, os2.group(1), int(os2.group(2)), target_fmt)

    raise ConfigurationError(
        f"unknown method name {name!r}; see repro.baselines.available_methods()"
    )


def available_methods() -> list[str]:
    """Representative method names accepted by :func:`get_method`."""
    return [
        "DGEMM",
        "SGEMM",
        "TF32GEMM",
        "BF16x9",
        "cuMpSGEMM",
        "ozIMMU_EF-<S>",
        "OS II-fast-<N>",
        "OS II-accu-<N>",
    ]
