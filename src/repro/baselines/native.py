"""Native DGEMM / SGEMM baselines.

These correspond to the paper's ``DGEMM`` and ``SGEMM`` reference points
(``cublasGemmEx`` with the native compute types).  Numerically they are the
IEEE binary64 / binary32 products delivered by NumPy's BLAS backend.
"""

from __future__ import annotations

import numpy as np

from ..engines.native import Fp32MatrixEngine, Fp64MatrixEngine
from ..utils.validation import check_gemm_operands

__all__ = ["native_dgemm", "native_sgemm"]


def native_dgemm(a: np.ndarray, b: np.ndarray, engine: Fp64MatrixEngine | None = None) -> np.ndarray:
    """FP64 GEMM, the paper's ``DGEMM`` baseline."""
    a, b = check_gemm_operands(a, b, dtype=np.float64)
    engine = engine or Fp64MatrixEngine()
    return engine.matmul(a, b)


def native_sgemm(a: np.ndarray, b: np.ndarray, engine: Fp32MatrixEngine | None = None) -> np.ndarray:
    """FP32 GEMM, the paper's ``SGEMM`` baseline."""
    a, b = check_gemm_operands(a, b, dtype=np.float32)
    engine = engine or Fp32MatrixEngine()
    return engine.matmul(a, b)
