"""TF32 tensor-core GEMM baseline.

Corresponds to the paper's ``TF32GEMM`` method (``cublasGemmEx`` with
``CUBLAS_COMPUTE_32F_FAST_TF32``): the inputs are rounded to TF32 (11-bit
significand) and the products are accumulated in FP32.  It is the low end
of the accuracy range in Figure 3 and the high end of the throughput range
in Figure 5 — the paper positions Ozaki scheme II between TF32GEMM and
SGEMM on both axes.
"""

from __future__ import annotations

import numpy as np

from ..engines.lowprec_fp import Tf32MatrixEngine
from ..utils.validation import check_gemm_operands

__all__ = ["tf32_gemm"]


def tf32_gemm(a: np.ndarray, b: np.ndarray, engine: Tf32MatrixEngine | None = None) -> np.ndarray:
    """TF32 matrix product with FP32 accumulation."""
    a, b = check_gemm_operands(a, b, dtype=np.float32)
    engine = engine or Tf32MatrixEngine()
    return engine.matmul(a, b)
