"""Unified result objects shared by every emulated entry point.

Every public operation of the library — an emulated GEMM, the residue-GEMV
fast path, an iterative solve — answers with the same four ingredients: the
computed **value**, the resolved **configuration**, the wall-clock **phase
times** of Algorithm 1, and the INT8 engine's operation **ledger**.  Before
the :class:`~repro.session.Session` redesign each entry point carried its
own result dataclass duplicating those fields under private names
(``Ozaki2Result.c`` / ``GemvResult.c`` / ``SolveResult.x``,
``int8_counter`` vs. an absent solver ledger, …).  :class:`Result` is the
shared base:

* ``value`` — the computed array (product matrix, product vector, or
  solution vector),
* ``config`` — the (always concrete) :class:`~repro.config.Ozaki2Config`
  the computation ran under,
* ``phase_times`` — the :class:`PhaseTimes` breakdown (``None`` where a
  composite operation has no single breakdown, e.g. a whole solve),
* ``ledger`` — the :class:`~repro.engines.base.OpCounter` of the engine
  that retired the work,
* ``moduli_history`` — the moduli count(s) the operation actually used:
  one entry per emulated product for solves (the progressive ladder), a
  single entry for one-shot products.

The concrete classes — :class:`GemmResult` (née ``Ozaki2Result``, which
remains as an alias), :class:`~repro.core.gemv.GemvResult`,
:class:`~repro.apps.solvers.SolveResult` — keep their historical attribute
names (``c``, ``x``, ``int8_counter``) as read-only properties, so existing
callers and tests run unchanged.

The per-phase timing keys follow the line grouping used by the paper's time
breakdown (Figures 6 and 7):

============  =============================================================
key           Algorithm 1 lines
============  =============================================================
``scale``     1 (scale-vector determination; includes the extra INT8 GEMM
              of accurate mode)
``convert_A``  2 and 4 (truncation + residues of A)
``convert_B``  3 and 5 (truncation + residues of B)
``matmul``    6 (the N INT8 GEMMs)
``accumulate`` 7–9 (mod to UINT8 and the two split accumulations)
``reconstruct`` 10–11 (Q and the FMA combination)
``unscale``   12 (inverse diagonal scaling)
============  =============================================================
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

import numpy as np

from .config import Ozaki2Config
from .engines.base import OpCounter

__all__ = [
    "PHASE_KEYS",
    "PhaseTimes",
    "Result",
    "GemmResult",
    "Ozaki2Result",
]

#: Ordered list of phase keys (matches the breakdown figures).
PHASE_KEYS = (
    "scale",
    "convert_A",
    "convert_B",
    "matmul",
    "accumulate",
    "reconstruct",
    "unscale",
)


@dataclasses.dataclass
class PhaseTimes:
    """Wall-clock seconds spent in each phase of Algorithm 1 (this CPU run)."""

    seconds: Dict[str, float] = dataclasses.field(
        default_factory=lambda: {key: 0.0 for key in PHASE_KEYS}
    )

    def add(self, key: str, dt: float) -> None:
        """Accumulate ``dt`` seconds into phase ``key``."""
        self.seconds[key] = self.seconds.get(key, 0.0) + float(dt)

    @property
    def total(self) -> float:
        """Total measured seconds across all phases."""
        return float(sum(self.seconds.values()))

    def fractions(self) -> Dict[str, float]:
        """Per-phase fraction of the total time (empty phases give 0)."""
        total = self.total
        if total <= 0.0:
            return {key: 0.0 for key in self.seconds}
        return {key: value / total for key, value in self.seconds.items()}


class _PhaseTimer:
    """Tiny context helper accumulating wall-clock time into a PhaseTimes."""

    def __init__(self, times: PhaseTimes, key: str) -> None:
        self._times = times
        self._key = key
        self._start = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._times.add(self._key, time.perf_counter() - self._start)


@dataclasses.dataclass
class Result:
    """Shared base of every emulated-operation result (see module docstring).

    Attributes
    ----------
    value:
        The computed array: the product matrix of a GEMM, the product
        vector of a GEMV, the solution vector of a solve.
    config:
        The (concrete) configuration the computation ran under; under
        ``num_moduli="auto"`` this carries the resolved count.
    phase_times:
        Per-phase wall-clock breakdown, or ``None`` for composite
        operations without a single Algorithm-1 breakdown.
    ledger:
        The engine's operation ledger (GEMM calls, MACs, bytes, emulated
        calls, operand-cache events), or ``None`` where no engine ledger
        was collected.
    moduli_history:
        Moduli count(s) actually used, one entry per emulated product.
    """

    value: Optional[np.ndarray] = None
    config: Optional[Ozaki2Config] = None
    phase_times: Optional[PhaseTimes] = None
    ledger: Optional[OpCounter] = None
    moduli_history: List[int] = dataclasses.field(default_factory=list)

    @property
    def method_name(self) -> str:
        """Paper-style method name (e.g. ``"OS II-fast-14"``)."""
        if self.config is None:
            raise AttributeError("result carries no configuration")
        return self.config.method_name

    @property
    def moduli_used(self) -> List[int]:
        """Distinct moduli counts used, ascending (``[]`` if unrecorded)."""
        return sorted(set(self.moduli_history))

    @property
    def bound_met(self) -> bool:
        """Whether the selection's error bound met the accuracy target.

        ``num_moduli="auto"`` clamps to ``MAX_MODULI`` when even the full
        moduli set cannot guarantee the requested ``target_accuracy`` —
        the call still runs (and emits a once-per-process
        :class:`RuntimeWarning`), but the result is *not* certified to the
        target.  This property makes that machine-checkable: ``False``
        exactly when a clamped selection decided this result.  Fixed-count
        runs carry no selection diagnostic and report ``True`` (nothing was
        requested, so nothing was missed).
        """
        selection = getattr(self, "moduli_selection", None)
        if selection is None:
            return True
        return bool(selection.met)

    @property
    def fault_events(self) -> Dict[str, int]:
        """Resilience events survived while computing this result.

        The ledger's ``fault_events`` histogram (``task_retry``,
        ``wave_retry``, ``pool_failure``, ``shm_fallback``,
        ``degraded_to_thread``, …) — empty for a fault-free run or when no
        ledger was collected.  Recoveries are recorded here instead of
        perturbing the work counters, so a recovered run stays
        ledger-comparable to a fault-free one.
        """
        if self.ledger is None:
            return {}
        return dict(self.ledger.fault_events)

    @property
    def degraded(self) -> bool:
        """True when the process executor degraded to the thread path.

        The scheduler records ``degraded_to_thread`` after surviving more
        pool failures than ``config.max_pool_rebuilds`` allows; the value
        is still bit-identical, but the run no longer used worker
        processes.  Never silent: this flag, the ledger histogram, and a
        ``repro.runtime.scheduler`` log record all carry the event.
        """
        return self.fault_events.get("degraded_to_thread", 0) > 0


@dataclasses.dataclass
class GemmResult(Result):
    """Full result of one emulated GEMM (historically ``Ozaki2Result``).

    Attributes
    ----------
    value:
        The emulated product, in the target precision's dtype (also
        reachable under the historical name :attr:`c`).
    config:
        The configuration used.
    mu / nu:
        The power-of-two scale vectors actually applied.
    phase_times:
        Wall-clock seconds per phase (this process; useful for the CPU
        wall-clock benchmark, *not* a GPU prediction — that is the job of
        :mod:`repro.perfmodel`).
    ledger:
        Operation ledger of the INT8 engine (GEMM calls, MACs, bytes; also
        reachable under the historical name :attr:`int8_counter`).
    num_k_blocks:
        Number of inner-dimension blocks actually used, derived from the
        execution plan's block ranges (1 unless k-blocking was enabled and
        required, i.e. ``k > 2^17``).
    moduli_selection:
        The :class:`~repro.crt.adaptive.AdaptiveSelection` diagnostic when
        the call ran with ``num_moduli="auto"`` (selected count, guaranteed
        error bound, whether the target was met); ``None`` for fixed-count
        runs.  ``config`` always carries the resolved count either way.
    """

    mu: Optional[np.ndarray] = None
    nu: Optional[np.ndarray] = None
    num_k_blocks: int = 1
    moduli_selection: object = None

    @property
    def c(self) -> np.ndarray:
        """The emulated product (historical alias of :attr:`value`)."""
        return self.value

    @property
    def int8_counter(self) -> OpCounter:
        """The engine's op ledger (historical alias of :attr:`ledger`)."""
        return self.ledger


#: Historical name of :class:`GemmResult`, kept as a full alias (class
#: identity included) so ``isinstance`` checks and imports keep working.
Ozaki2Result = GemmResult
