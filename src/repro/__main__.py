"""Allow ``python -m repro <subcommand>`` to invoke the CLI."""

from __future__ import annotations

from .cli import main

__all__ = ["main"]

if __name__ == "__main__":
    raise SystemExit(main())
