"""Array double-double (~106-bit) arithmetic.

A double-double number represents a value as an unevaluated sum of two
float64 values ``hi + lo`` with ``|lo| <= ulp(hi)/2``.  The library uses
double-double arithmetic in two places:

* the accuracy reference GEMM (:mod:`repro.accuracy.reference`), which needs
  substantially more than 53 bits so that measured errors of FP64-level
  emulation are meaningful, and
* analysis helpers around the accumulation step of Algorithm 1 (the constant
  ``P`` of the CRT is itself stored as the double-double ``P1 + P2``).

All operations are vectorised over NumPy arrays and follow the classical
Dekker/Knuth/Bailey formulations.  A double-double is represented as a pair
``(hi, lo)`` of equally-shaped float64 arrays; no wrapper class is used so
that intermediate results stay cheap.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .fma import fast_two_sum, two_prod, two_sum

__all__ = [
    "dd_from_fp",
    "dd_to_fp",
    "dd_two_sum",
    "dd_add",
    "dd_add_fp",
    "dd_mul",
    "dd_mul_fp",
    "dd_neg",
    "dd_sum",
    "dd_abs",
    "dd_sub",
]

DD = Tuple[np.ndarray, np.ndarray]


def dd_from_fp(x) -> DD:
    """Promote a float64 array to a double-double with zero low part."""
    hi = np.asarray(x, dtype=np.float64)
    return hi, np.zeros_like(hi)


def dd_to_fp(x: DD) -> np.ndarray:
    """Round a double-double back to float64 (hi + lo)."""
    hi, lo = x
    return hi + lo


def dd_two_sum(hi: np.ndarray, lo: np.ndarray) -> DD:
    """Renormalise a (hi, lo) pair so that ``|lo| <= ulp(hi)/2``."""
    s, e = fast_two_sum(hi, lo)
    return s, e


def dd_neg(x: DD) -> DD:
    """Negate a double-double."""
    hi, lo = x
    return -hi, -lo


def dd_abs(x: DD) -> DD:
    """Absolute value of a double-double."""
    hi, lo = x
    flip = np.signbit(hi)
    sign = np.where(flip, -1.0, 1.0)
    return hi * sign, lo * sign


def dd_add(x: DD, y: DD) -> DD:
    """Accurate double-double addition (Bailey's algorithm)."""
    xh, xl = x
    yh, yl = y
    s, e = two_sum(xh, yh)
    t, f = two_sum(xl, yl)
    e = e + t
    s, e = fast_two_sum(s, e)
    e = e + f
    return fast_two_sum(s, e)


def dd_sub(x: DD, y: DD) -> DD:
    """Double-double subtraction ``x - y``."""
    return dd_add(x, dd_neg(y))


def dd_add_fp(x: DD, y) -> DD:
    """Add a float64 array to a double-double."""
    xh, xl = x
    y = np.asarray(y, dtype=np.float64)
    s, e = two_sum(xh, y)
    e = e + xl
    return fast_two_sum(s, e)


def dd_mul(x: DD, y: DD) -> DD:
    """Double-double multiplication."""
    xh, xl = x
    yh, yl = y
    p, e = two_prod(xh, yh)
    e = e + (xh * yl + xl * yh)
    return fast_two_sum(p, e)


def dd_mul_fp(x: DD, y) -> DD:
    """Multiply a double-double by a float64 array."""
    xh, xl = x
    y = np.asarray(y, dtype=np.float64)
    p, e = two_prod(xh, y)
    e = e + xl * y
    return fast_two_sum(p, e)


def dd_sum(hi_terms: np.ndarray, lo_terms: np.ndarray, axis: int = -1) -> DD:
    """Sum double-double terms along an axis with double-double accumulation.

    ``hi_terms``/``lo_terms`` hold the high and low parts of each term.  The
    reduction is a simple sequential double-double accumulation along the
    requested axis, which keeps ~106 bits regardless of the term count seen
    in this library (inner dimensions up to a few tens of thousands).
    """
    hi_terms = np.asarray(hi_terms, dtype=np.float64)
    lo_terms = np.asarray(lo_terms, dtype=np.float64)
    hi_moved = np.moveaxis(hi_terms, axis, 0)
    lo_moved = np.moveaxis(lo_terms, axis, 0)
    acc_hi = np.zeros(hi_moved.shape[1:], dtype=np.float64)
    acc_lo = np.zeros(hi_moved.shape[1:], dtype=np.float64)
    for idx in range(hi_moved.shape[0]):
        acc_hi, acc_lo = dd_add((acc_hi, acc_lo), (hi_moved[idx], lo_moved[idx]))
    return acc_hi, acc_lo
