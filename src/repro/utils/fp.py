"""Floating-point exponent helpers and directed-rounding reductions.

The scale vectors of Section 4.2 are built from quantities of the form
``floor(log2(max_h |a_ih|))`` and from row/column sums of squares that the
paper requires to be computed *in round-up mode* so that the Cauchy–Schwarz
bound (7) is a true upper bound.  NumPy cannot switch the FPU rounding mode
portably, so :func:`round_up_sum_of_squares` instead computes an upper bound
on the round-to-nearest result by inflating it with the standard a-priori
error bound ``(n*u/(1-n*u))`` — slightly looser than true round-up mode but
guaranteed to be an upper bound, which is all condition (7) needs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = [
    "pow2",
    "exponent_floor",
    "ufp",
    "next_power_of_two_exponent",
    "round_up_sum_of_squares",
    "upper_bound_inflation",
]


def pow2(e) -> np.ndarray:
    """Return ``2.0**e`` as float64 for integer (array) exponents.

    ``np.ldexp`` is used so the result is exact for every exponent in the
    float64 range, including very large/small scale factors.
    """
    e = np.asarray(e)
    return np.ldexp(np.ones_like(e, dtype=np.float64), e.astype(np.int64))


def exponent_floor(x) -> np.ndarray:
    """``floor(log2(|x|))`` computed exactly from the binary representation.

    Zeros map to the most negative int64 exponent surrogate (-1074 - 1) so
    that downstream ``max`` reductions ignore them naturally.  This mirrors
    the role of ``floor(log2 max_h |a_ih|)`` in Section 4.2 without the
    rounding hazards of calling ``log2`` on values close to powers of two.
    """
    x = np.asarray(x, dtype=np.float64)
    mantissa, exponent = np.frexp(np.abs(x))
    # frexp returns mantissa in [0.5, 1), so floor(log2|x|) = exponent - 1.
    result = exponent.astype(np.int64) - 1
    return np.where(x == 0.0, np.int64(-1075), result)


def ufp(x) -> np.ndarray:
    """Unit in the first place: the largest power of two not exceeding |x|.

    ``ufp(0) = 0`` by convention.
    """
    x = np.asarray(x, dtype=np.float64)
    e = exponent_floor(x)
    out = pow2(np.where(x == 0.0, 0, e))
    return np.where(x == 0.0, 0.0, out)


def next_power_of_two_exponent(x) -> np.ndarray:
    """Smallest integer ``e`` with ``2**e >= |x|`` (elementwise).

    Exact powers of two map to their own exponent.  Zeros map to 0.
    """
    x = np.asarray(x, dtype=np.float64)
    e = exponent_floor(x)
    is_pow2 = np.abs(x) == ufp(x)
    out = np.where(is_pow2, e, e + 1)
    return np.where(x == 0.0, np.int64(0), out)


def upper_bound_inflation(n: int, dtype=np.float64) -> float:
    """Inflation factor turning a nearest-rounded sum into an upper bound.

    For a recursive summation of ``n`` non-negative terms in precision with
    unit roundoff ``u``, the computed value ``s_hat`` satisfies
    ``s <= s_hat * (1 + gamma)`` with ``gamma = n*u / (1 - n*u)``.  Multiplying
    the computed value by ``1 + 2*gamma`` therefore gives a guaranteed upper
    bound on the exact sum (the factor 2 absorbs the final multiplication's
    own rounding).
    """
    if n < 0:
        raise ValidationError("n must be non-negative")
    u = float(np.finfo(dtype).eps) / 2.0
    nu = (n + 2) * u
    if nu >= 1.0:  # pathological sizes; fall back to a crude factor of 2
        return 2.0
    gamma = nu / (1.0 - nu)
    return 1.0 + 2.0 * gamma


def round_up_sum_of_squares(x: np.ndarray, axis: int) -> np.ndarray:
    """Upper bound on ``sum(x**2, axis)`` as required by Section 4.2.

    The paper asks for the row/column sums of squares to be evaluated in
    round-up mode so the Cauchy–Schwarz bound (7) holds rigorously.  This
    implementation computes the nearest-rounded sum and inflates it by the
    a-priori bound of :func:`upper_bound_inflation`, yielding a value that is
    provably no smaller than the exact sum.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[axis]
    s = np.sum(np.square(x), axis=axis, dtype=np.float64)
    return s * upper_bound_inflation(2 * n)
