"""Input validation shared by every public entry point.

Validation failures raise :class:`~repro.errors.ValidationError`, which is a
``ValueError`` subclass so that callers used to NumPy semantics can catch it
with either exception type.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ValidationError

__all__ = ["ensure_2d", "require_finite", "check_operand", "check_gemm_operands"]


def ensure_2d(x, name: str = "matrix") -> np.ndarray:
    """Return ``x`` as a 2-D float array, raising on other ranks."""
    arr = np.asarray(x)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValidationError(
            f"{name} has a zero dimension (shape {arr.shape}); GEMM operands "
            "must be non-empty — degenerate m/k/n products are rejected rather "
            "than silently returning empty or all-zero results"
        )
    return arr


def check_operand(
    x, name: str = "matrix", dtype=np.float64, check_finite: bool = True
) -> np.ndarray:
    """Validate and coerce a single GEMM operand.

    Applies exactly the per-side checks of :func:`check_gemm_operands`
    (2-D, non-empty, cast to ``dtype``, contiguous, optionally finite) so a
    side validated on its own — e.g. while preparing a
    :class:`~repro.core.operand.ResidueOperand` — is bit-identical to one
    validated through the pair entry point.
    """
    x = ensure_2d(x, name)
    x = np.ascontiguousarray(x, dtype=dtype)
    if check_finite:
        require_finite(x, name)
    return x


def require_finite(x: np.ndarray, name: str = "matrix") -> None:
    """Raise if ``x`` contains NaN or infinity."""
    if not np.all(np.isfinite(x)):
        raise ValidationError(f"{name} contains non-finite values (NaN or Inf)")


def check_gemm_operands(
    a, b, dtype=np.float64, check_finite: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and coerce GEMM operands.

    Checks that ``a`` and ``b`` are non-empty 2-D arrays with a matching
    inner dimension, casts them to ``dtype`` and (optionally) checks
    finiteness.  Returns the coerced pair.
    """
    a = check_operand(a, "A", dtype=dtype, check_finite=False)
    b = check_operand(b, "B", dtype=dtype, check_finite=False)
    if a.shape[1] != b.shape[0]:
        raise ValidationError(
            f"inner dimensions do not match: A is {a.shape}, B is {b.shape}"
        )
    if check_finite:
        require_finite(a, "A")
        require_finite(b, "B")
    return a, b
