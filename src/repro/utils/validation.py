"""Input validation shared by every public entry point.

Validation failures raise :class:`~repro.errors.ValidationError`, which is a
``ValueError`` subclass so that callers used to NumPy semantics can catch it
with either exception type.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ValidationError

__all__ = ["ensure_2d", "require_finite", "check_gemm_operands"]


def ensure_2d(x, name: str = "matrix") -> np.ndarray:
    """Return ``x`` as a 2-D float array, raising on other ranks."""
    arr = np.asarray(x)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty, got shape {arr.shape}")
    return arr


def require_finite(x: np.ndarray, name: str = "matrix") -> None:
    """Raise if ``x`` contains NaN or infinity."""
    if not np.all(np.isfinite(x)):
        raise ValidationError(f"{name} contains non-finite values (NaN or Inf)")


def check_gemm_operands(
    a, b, dtype=np.float64, check_finite: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and coerce GEMM operands.

    Checks that ``a`` and ``b`` are non-empty 2-D arrays with a matching
    inner dimension, casts them to ``dtype`` and (optionally) checks
    finiteness.  Returns the coerced pair.
    """
    a = ensure_2d(a, "A")
    b = ensure_2d(b, "B")
    if a.shape[1] != b.shape[0]:
        raise ValidationError(
            f"inner dimensions do not match: A is {a.shape}, B is {b.shape}"
        )
    a = np.ascontiguousarray(a, dtype=dtype)
    b = np.ascontiguousarray(b, dtype=dtype)
    if check_finite:
        require_finite(a, "A")
        require_finite(b, "B")
    return a, b
