"""Low-level numerical utilities shared across the library.

Submodules
----------
``fp``
    Exponent/power-of-two helpers, round-up-mode reductions.
``fma``
    Error-free transformations (``two_sum``, ``two_prod``, Dekker split) and
    a software fused multiply-add built on top of them.
``doubledouble``
    Array double-double (~106-bit) arithmetic used by the accuracy reference
    and by the accumulation analysis.
``validation``
    Input validation shared by all public entry points.
"""

from __future__ import annotations

from .fma import fast_two_sum, fma, split, two_prod, two_sum
from .fp import (
    exponent_floor,
    next_power_of_two_exponent,
    pow2,
    round_up_sum_of_squares,
    ufp,
)
from .doubledouble import (
    dd_add,
    dd_add_fp,
    dd_from_fp,
    dd_mul,
    dd_mul_fp,
    dd_sum,
    dd_to_fp,
    dd_two_sum,
)
from .validation import check_gemm_operands, ensure_2d, require_finite

__all__ = [
    "fast_two_sum",
    "fma",
    "split",
    "two_prod",
    "two_sum",
    "exponent_floor",
    "next_power_of_two_exponent",
    "pow2",
    "round_up_sum_of_squares",
    "ufp",
    "dd_add",
    "dd_add_fp",
    "dd_from_fp",
    "dd_mul",
    "dd_mul_fp",
    "dd_sum",
    "dd_to_fp",
    "dd_two_sum",
    "check_gemm_operands",
    "ensure_2d",
    "require_finite",
]
