"""Error-free transformations and a software fused multiply-add.

NumPy does not expose a hardware FMA, but the paper's fast residue kernels
(Section 4.2) and the final reconstruction step (line 11 of Algorithm 1) are
written in terms of FMA.  This module provides the classical error-free
building blocks:

* :func:`two_sum` — Knuth's branch-free exact addition ``a + b = s + e``.
* :func:`fast_two_sum` — Dekker's variant, exact when ``|a| >= |b|``.
* :func:`split` — Dekker's splitting of a float64 into two 26-bit halves.
* :func:`two_prod` — exact product ``a * b = p + e`` via Dekker splitting.
* :func:`fma` — a faithful software ``a*b + c`` built from the above.

All functions are vectorised: they accept scalars or NumPy arrays of
``float64`` and broadcast like NumPy ufuncs.  The intermediate quantities are
kept in ``float64``; inputs of other dtypes are up-cast.

Accuracy note
-------------
:func:`fma` computes the exact value of ``a*b + c`` as a double-double and
rounds it with one final addition.  This is *faithful* (error below 1 ulp)
rather than correctly rounded in full generality, but it is exact whenever
the true result is representable — which is the case in every place the
library uses it (integer-valued operands within the float64 exact range, as
in the residue kernels and the ``C'' = C' - P*Q`` reconstruction).
"""

from __future__ import annotations

import numpy as np

__all__ = ["two_sum", "fast_two_sum", "split", "two_prod", "fma"]

#: Dekker splitting constant for binary64: 2**27 + 1.
_SPLIT_FACTOR = np.float64(134217729.0)


def _as_f64(x) -> np.ndarray:
    """Coerce input to a float64 array (no copy when already float64)."""
    return np.asarray(x, dtype=np.float64)


def two_sum(a, b):
    """Knuth's error-free addition.

    Returns ``(s, e)`` with ``s = fl(a + b)`` and ``a + b = s + e`` exactly,
    for any ordering of magnitudes (no branch).
    """
    a = _as_f64(a)
    b = _as_f64(b)
    s = a + b
    bb = s - a
    e = (a - (s - bb)) + (b - bb)
    return s, e


def fast_two_sum(a, b):
    """Dekker's error-free addition, valid when ``|a| >= |b|`` elementwise.

    Returns ``(s, e)`` with ``s = fl(a + b)`` and ``a + b = s + e`` exactly
    provided the magnitude condition holds.  One floating-point operation
    cheaper than :func:`two_sum`.
    """
    a = _as_f64(a)
    b = _as_f64(b)
    s = a + b
    e = b - (s - a)
    return s, e


def split(a):
    """Dekker's splitting of float64 values into high and low parts.

    Returns ``(hi, lo)`` such that ``a = hi + lo`` exactly and both parts
    have at most 26 significand bits, so products ``hi*hi``, ``hi*lo``,
    ``lo*lo`` are exact in float64.

    Values with magnitude above roughly ``2**996`` would overflow the
    splitting constant; the library never produces such values (the largest
    quantities are ``P`` for 20 moduli, around ``2**159``), so no scaling
    branch is included.
    """
    a = _as_f64(a)
    t = _SPLIT_FACTOR * a
    hi = t - (t - a)
    lo = a - hi
    return hi, lo


def two_prod(a, b):
    """Error-free product via Dekker splitting.

    Returns ``(p, e)`` with ``p = fl(a * b)`` and ``a * b = p + e`` exactly
    (barring overflow/underflow of the exact product).
    """
    a = _as_f64(a)
    b = _as_f64(b)
    p = a * b
    a_hi, a_lo = split(a)
    b_hi, b_lo = split(b)
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, e


def fma(a, b, c):
    """Software fused multiply-add ``a*b + c`` (faithful rounding).

    The product is formed exactly with :func:`two_prod`, added to ``c`` with
    :func:`two_sum`, and the two error terms are folded back with a single
    rounded addition.  The result differs from a hardware FMA by at most one
    unit in the last place and is exact whenever the true value of
    ``a*b + c`` is representable in float64.
    """
    p, e_p = two_prod(a, b)
    s, e_s = two_sum(p, c)
    return s + (e_s + e_p)
