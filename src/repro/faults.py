"""Deterministic, seeded fault injection for the runtime and service stack.

Production failures — a worker process OOM-killed mid-wave, ``/dev/shm``
exhausted, a response frame stalled or dropped on the wire, a cache flushed
under memory pressure — are exactly the paths the reproduction's
bit-identity guarantee must survive, and exactly the paths ordinary tests
never reach.  This module makes them *reachable on purpose*: a
:class:`FaultPlan` arms a set of named **injection sites** (the table
below) that library code consults at the moment the corresponding real
failure would strike.  Every decision is deterministic given the plan's
seed, so a chaos scenario that fails replays identically under the same
spec string.

==========================  ==============================================
site                        effect when armed
==========================  ==============================================
``worker.crash``            a runtime worker process exits hard
                            (``os._exit``) before running its next task
``worker.task_error``       a task raises :class:`InjectedFault` inside
                            the worker (reported, pool stays alive)
``pool.spawn``              :class:`~repro.runtime.process.ProcessPool`
                            construction fails before workers start
``shm.alloc``               :meth:`SharedArray.create
                            <repro.runtime.shm.SharedArray.create>` raises
                            instead of allocating a segment
``tile.read``               opening a memory-mapped operand descriptor in
                            a worker raises (out-of-core read error)
``tile.stage``              :class:`~repro.runtime.tilesource.TileSource`
                            staging raises mid-strip (retried once)
``service.slow_frame``      the server delays its response frame by
                            ``delay`` seconds
``service.drop_frame``      the server closes the connection without
                            answering (client sees a dead socket)
``cache.evict_storm``       the operand cache evicts every entry right
                            before a lookup (forces ``operand-missing``)
==========================  ==============================================

Spec strings arm sites with per-site knobs, semicolon-separated::

    worker.crash:times=1; service.slow_frame:delay=0.25,after=2

* ``times`` — maximum number of fires (default unlimited),
* ``after`` — skip the first N eligible hits before firing,
* ``rate``  — fire probability per eligible hit, decided by a
  per-site ``random.Random`` seeded from ``(plan seed, site)``,
* ``delay`` — seconds for delay-style sites (``service.slow_frame``).

Hit/fire counters are **per process**: worker processes receive the spec
string over the task pipe and install their own plan, so ``times=1``
bounds each worker independently (documented behaviour the chaos suite
relies on).

Arming: :func:`install` / :func:`uninstall`, the :func:`inject` context
manager, the ``repro run --inject-faults`` CLI flag, or the
``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED`` environment variables (read once,
lazily — how ``repro serve`` and spawned tooling are armed without code
changes).  With no plan installed every check is a cheap ``None`` test.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional, Sequence, Union

from .analysis.lockorder import named_lock
from .errors import ConfigurationError

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "inject",
    "install",
    "raise_if",
    "should_fire",
    "sleep_if",
    "uninstall",
]

#: Every injection site the library consults, with a one-line description
#: (rendered in the README's fault-site table; unknown sites are rejected
#: at parse time so a typo cannot silently arm nothing).
FAULT_SITES: Dict[str, str] = {
    "worker.crash": "runtime worker process exits hard before its next task",
    "worker.task_error": "task raises InjectedFault inside the worker",
    "pool.spawn": "ProcessPool construction fails before workers start",
    "shm.alloc": "shared-memory segment allocation raises",
    "tile.read": "opening a memory-mapped operand descriptor raises",
    "tile.stage": "TileSource staging raises mid-strip",
    "service.slow_frame": "server delays its response frame by `delay` seconds",
    "service.drop_frame": "server closes the connection without answering",
    "cache.evict_storm": "operand cache evicts every entry before a lookup",
}


class InjectedFault(RuntimeError):
    """An armed injection site fired.

    Deliberately **not** a :class:`~repro.errors.ReproError`: the resilience
    layers must treat an injected failure exactly like the infrastructure
    failure it simulates (an ``OSError``, a dead process, an OOM), and the
    service maps it to an *internal* error — never to a client mistake.
    """


class FaultSpec:
    """One armed site: ``times`` / ``after`` / ``rate`` / ``delay`` knobs.

    Immutable value object; the mutable hit/fire counters live on the
    owning :class:`FaultPlan` so one spec can be shared/round-tripped.
    """

    __slots__ = ("site", "times", "after", "rate", "delay")

    def __init__(
        self,
        site: str,
        times: Optional[int] = None,
        after: int = 0,
        rate: float = 1.0,
        delay: float = 0.0,
    ) -> None:
        if site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {site!r}; known sites: "
                f"{', '.join(sorted(FAULT_SITES))}"
            )
        if times is not None and int(times) < 0:
            raise ConfigurationError(f"fault site {site!r}: times must be >= 0")
        if int(after) < 0:
            raise ConfigurationError(f"fault site {site!r}: after must be >= 0")
        if not 0.0 <= float(rate) <= 1.0:
            raise ConfigurationError(f"fault site {site!r}: rate must be in [0, 1]")
        if float(delay) < 0.0:
            raise ConfigurationError(f"fault site {site!r}: delay must be >= 0")
        self.site = site
        self.times = None if times is None else int(times)
        self.after = int(after)
        self.rate = float(rate)
        self.delay = float(delay)

    def spec(self) -> str:
        """The canonical spec-string fragment for this site."""
        parts = []
        if self.times is not None:
            parts.append(f"times={self.times}")
        if self.after:
            parts.append(f"after={self.after}")
        if self.rate != 1.0:
            parts.append(f"rate={self.rate}")
        if self.delay:
            parts.append(f"delay={self.delay}")
        return self.site + (":" + ",".join(parts) if parts else "")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultSpec {self.spec()!r}>"


def _parse_site(fragment: str) -> FaultSpec:
    """Parse one ``site[:key=val,...]`` fragment of a spec string."""
    site, _, params = fragment.partition(":")
    site = site.strip()
    kwargs: Dict[str, Union[int, float]] = {}
    for pair in params.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, sep, value = pair.partition("=")
        key = key.strip()
        if not sep:
            raise ConfigurationError(
                f"fault spec {fragment!r}: expected key=value, got {pair!r}"
            )
        try:
            if key in ("times", "after"):
                kwargs[key] = int(value)
            elif key in ("rate", "delay"):
                kwargs[key] = float(value)
            else:
                raise ConfigurationError(
                    f"fault spec {fragment!r}: unknown knob {key!r} "
                    "(expected times/after/rate/delay)"
                )
        except ValueError as exc:
            raise ConfigurationError(
                f"fault spec {fragment!r}: bad value for {key!r}: {exc}"
            ) from exc
    return FaultSpec(site, **kwargs)  # type: ignore[arg-type]


class FaultPlan:
    """A seeded set of armed injection sites with per-site hit accounting.

    Thread-safe: the hit/fire counters (and the per-site ``rate`` RNGs) are
    guarded by a ``named_lock``, so concurrent server threads hitting the
    same site make one globally-ordered sequence of decisions.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self.seed = int(seed)
        self._specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.site in self._specs:
                raise ConfigurationError(
                    f"fault site {spec.site!r} armed twice in one plan"
                )
            self._specs[spec.site] = spec
        # Per-site RNG seeded from (plan seed, site name): rate decisions
        # are independent across sites and reproducible across runs.
        self._rngs: Dict[str, random.Random] = {
            site: random.Random(f"{self.seed}:{site}") for site in self._specs
        }
        self._hits: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._lock = named_lock("faults.plan._lock")

    # -- construction --------------------------------------------------------
    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a ``site:key=val,...;site2:...`` spec string."""
        specs = [
            _parse_site(fragment)
            for fragment in text.split(";")
            if fragment.strip()
        ]
        if not specs:
            raise ConfigurationError(f"fault spec {text!r} arms no sites")
        return cls(specs, seed=seed)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan armed by ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``, if any."""
        env = os.environ if environ is None else environ
        text = env.get("REPRO_FAULTS", "").strip()
        if not text:
            return None
        try:
            seed = int(env.get("REPRO_FAULTS_SEED", "0"))
        except ValueError as exc:
            raise ConfigurationError(
                f"REPRO_FAULTS_SEED must be an integer: {exc}"
            ) from exc
        return cls.parse(text, seed=seed)

    def spec(self) -> str:
        """Canonical spec string (parses back to an equivalent plan).

        This is how the plan crosses the process boundary: the scheduler
        ships ``(plan.spec(), plan.seed)`` with the worker bootstrap and
        each worker installs its own freshly-counted copy.
        """
        return ";".join(self._specs[site].spec() for site in sorted(self._specs))

    # -- firing decisions ----------------------------------------------------
    def should_fire(self, site: str) -> bool:
        """Record one hit at ``site``; decide whether the fault fires."""
        spec = self._specs.get(site)
        if spec is None:
            return False
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            if hit < spec.after:
                return False
            if spec.times is not None and self._fired.get(site, 0) >= spec.times:
                return False
            if spec.rate < 1.0 and self._rngs[site].random() >= spec.rate:
                return False
            self._fired[site] = self._fired.get(site, 0) + 1
            return True

    def delay(self, site: str) -> float:
        """The armed ``delay`` seconds of ``site`` (0.0 when unarmed)."""
        spec = self._specs.get(site)
        return 0.0 if spec is None else spec.delay

    # -- introspection -------------------------------------------------------
    def hits(self, site: str) -> int:
        """How many times ``site`` was consulted in this process."""
        with self._lock:
            return self._hits.get(site, 0)

    def fired(self, site: str) -> int:
        """How many times ``site`` actually fired in this process."""
        with self._lock:
            return self._fired.get(site, 0)

    def report(self) -> Dict[str, Dict[str, int]]:
        """Per-site ``{"hits": n, "fired": n}`` snapshot (parent process)."""
        with self._lock:
            return {
                site: {
                    "hits": self._hits.get(site, 0),
                    "fired": self._fired.get(site, 0),
                }
                for site in sorted(self._specs)
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultPlan seed={self.seed} {self.spec()!r}>"


#: The process-wide armed plan (None = fault-free; the overwhelmingly
#: common case costs one lock-free attribute read per site check).
_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_LOCK = named_lock("faults._active_lock")
#: Whether the environment has been consulted yet (read lazily, once).
_ENV_LOADED = False


def install(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide (replacing any previous plan)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = plan
    return plan


def uninstall() -> None:
    """Disarm fault injection in this process entirely.

    Also marks the environment as consumed: a later :func:`active_plan`
    will *not* re-arm from ``REPRO_FAULTS``.  Worker processes rely on
    this to normalise ``fork`` (plan inherited) and ``spawn`` (env
    re-read) semantics — a worker is armed only by the spec the parent
    ships over the task pipe.
    """
    global _ACTIVE, _ENV_LOADED
    with _ACTIVE_LOCK:
        _ACTIVE = None
        _ENV_LOADED = True


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, if any — consulting ``REPRO_FAULTS`` on first call."""
    global _ACTIVE, _ENV_LOADED
    if _ACTIVE is not None:
        return _ACTIVE
    if _ENV_LOADED:
        return None
    with _ACTIVE_LOCK:
        if not _ENV_LOADED:
            _ENV_LOADED = True
            plan = FaultPlan.from_env()
            if plan is not None and _ACTIVE is None:
                _ACTIVE = plan
        return _ACTIVE


@contextmanager
def inject(spec: Union[str, FaultPlan], seed: int = 0) -> Iterator[FaultPlan]:
    """Arm a plan (or spec string) for the duration of the block."""
    plan = spec if isinstance(spec, FaultPlan) else FaultPlan.parse(spec, seed=seed)
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def should_fire(site: str) -> bool:
    """Whether the armed plan (if any) fires at ``site`` on this hit."""
    plan = active_plan()
    return plan is not None and plan.should_fire(site)


def raise_if(site: str) -> None:
    """Raise :class:`InjectedFault` when ``site`` fires (the common wiring)."""
    if should_fire(site):
        raise InjectedFault(f"injected fault at {site!r}")


def sleep_if(site: str) -> float:
    """Sleep the site's armed ``delay`` when it fires; return seconds slept."""
    plan = active_plan()
    if plan is None or not plan.should_fire(site):
        return 0.0
    delay = plan.delay(site)
    if delay > 0.0:
        time.sleep(delay)
    return delay
