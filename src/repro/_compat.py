"""Deprecation shims for the pre-:class:`~repro.session.Session` surface.

The 1.3 API redesign made :class:`repro.Session` the front door: it owns
the engine ledger, the warm scheduler pool and the transparent operand
cache that the free functions each rebuilt (or simply lacked) per call.
The historical top-level free functions keep working **bit-identically** —
each shim forwards every argument untouched to the original implementation
— but announce the move with a single :class:`DeprecationWarning` per name
per process (not per call: a solver invoking a shim in a loop must not
flood stderr).

Only the *top-level re-exports* are shimmed.  Internal modules import from
the defining submodules (``repro.core.gemm`` etc.), so library code never
triggers the warning; neither do users who deliberately import from the
submodule, which remains the supported spelling for low-level work.

``reset_deprecation_warnings`` clears the once-per-name registry — a test
hook, so warning-behaviour tests are order-independent.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable, Set

from .analysis.lockorder import named_lock

__all__ = ["deprecated_alias", "reset_deprecation_warnings"]

_WARNED: Set[str] = set()
_LOCK = named_lock("_compat._LOCK")


def reset_deprecation_warnings() -> None:
    """Forget which deprecated names already warned (test hook)."""
    with _LOCK:
        _WARNED.clear()


def deprecated_alias(name: str, replacement: str, func: Callable) -> Callable:
    """Wrap ``func`` to warn once (per process) that ``name`` moved.

    The wrapper forwards ``*args, **kwargs`` verbatim and returns the
    original's result unchanged, so the shim is bit-identical to calling
    ``func`` directly — the warning is the only observable difference, and
    only on the first call.
    """

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        with _LOCK:
            first = name not in _WARNED
            if first:
                _WARNED.add(name)
        if first:
            warnings.warn(
                f"repro.{name} is deprecated; use {replacement} — the Session "
                "facade shares one engine ledger, a warm scheduler pool and a "
                "transparent operand cache across calls (results are "
                "bit-identical either way)",
                DeprecationWarning,
                stacklevel=2,
            )
        return func(*args, **kwargs)

    wrapper.__deprecated_alias__ = name
    return wrapper
