"""Precision and number-format descriptors used throughout the library.

The paper manipulates several number formats:

* IEEE binary64 (FP64) and binary32 (FP32) — the emulation targets,
* FP16 / BF16 / TF32 — the formats used by the baseline emulation methods
  (cuMpSGEMM, BF16x9, TF32GEMM),
* INT8 with INT32 accumulation — the matrix-engine format used by both
  Ozaki scheme I (ozIMMU) and Ozaki scheme II (this paper).

A :class:`Format` instance is a lightweight, hashable description of such a
format: how many significand bits it carries, its exponent range, and how it
behaves as a matrix-engine *input* type.  The fixed instances defined at the
bottom of this module (``FP64``, ``FP32``, ``TF32``, ``BF16``, ``FP16``,
``INT8``) are the only ones the rest of the library uses; they are exposed in
:data:`FORMATS` for lookup by name.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "Format",
    "FP64",
    "FP32",
    "TF32",
    "BF16",
    "FP16",
    "INT8",
    "INT32",
    "FORMATS",
    "get_format",
    "unit_roundoff",
]


@dataclasses.dataclass(frozen=True)
class Format:
    """Description of a number format.

    Parameters
    ----------
    name:
        Canonical short name (``"fp64"``, ``"tf32"``, ...).
    kind:
        ``"float"`` for floating-point formats, ``"int"`` for integer formats.
    significand_bits:
        Number of significand bits *including* the implicit leading bit for
        floating-point formats; the total number of value bits (including the
        sign) for integer formats.
    exponent_bits:
        Number of exponent bits (0 for integer formats).
    storage_bits:
        Number of bits occupied in memory.  TF32 is stored as 32 bits even
        though only 19 are significant, matching NVIDIA hardware behaviour.
    np_dtype:
        The NumPy dtype used to *store* values of this format in this
        library.  Formats without a native NumPy dtype (TF32, BF16) are
        stored in ``float32`` after rounding onto their value grid.
    accumulate_dtype:
        The NumPy dtype used by matrix engines to accumulate products of
        this input format.
    """

    name: str
    kind: str
    significand_bits: int
    exponent_bits: int
    storage_bits: int
    np_dtype: np.dtype
    accumulate_dtype: np.dtype
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("float", "int"):
            raise ConfigurationError(f"unknown format kind {self.kind!r}")

    @property
    def is_float(self) -> bool:
        """True for floating-point formats."""
        return self.kind == "float"

    @property
    def is_int(self) -> bool:
        """True for integer formats."""
        return self.kind == "int"

    @property
    def bytes_per_element(self) -> float:
        """Storage size of one element in bytes."""
        return self.storage_bits / 8.0

    @property
    def machine_epsilon(self) -> float:
        """Unit roundoff ``2**-significand_bits`` for float formats.

        For integer formats this property raises
        :class:`~repro.errors.ConfigurationError` because the notion of a
        relative rounding error does not apply.
        """
        if not self.is_float:
            raise ConfigurationError(f"{self.name} is not a floating-point format")
        return 2.0 ** (-self.significand_bits)

    @property
    def max_exponent(self) -> int:
        """Largest unbiased binary exponent representable (float formats)."""
        if not self.is_float:
            raise ConfigurationError(f"{self.name} is not a floating-point format")
        return 2 ** (self.exponent_bits - 1) - 1

    @property
    def min_normal_exponent(self) -> int:
        """Smallest unbiased exponent of a normal number (float formats)."""
        if not self.is_float:
            raise ConfigurationError(f"{self.name} is not a floating-point format")
        return 2 - 2 ** (self.exponent_bits - 1)

    @property
    def int_min(self) -> int:
        """Smallest representable integer (integer formats)."""
        if not self.is_int:
            raise ConfigurationError(f"{self.name} is not an integer format")
        return -(2 ** (self.significand_bits - 1))

    @property
    def int_max(self) -> int:
        """Largest representable integer (integer formats)."""
        if not self.is_int:
            raise ConfigurationError(f"{self.name} is not an integer format")
        return 2 ** (self.significand_bits - 1) - 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


FP64 = Format(
    name="fp64",
    kind="float",
    significand_bits=53,
    exponent_bits=11,
    storage_bits=64,
    np_dtype=np.dtype(np.float64),
    accumulate_dtype=np.dtype(np.float64),
    description="IEEE 754 binary64 (double precision)",
)

FP32 = Format(
    name="fp32",
    kind="float",
    significand_bits=24,
    exponent_bits=8,
    storage_bits=32,
    np_dtype=np.dtype(np.float32),
    accumulate_dtype=np.dtype(np.float32),
    description="IEEE 754 binary32 (single precision)",
)

TF32 = Format(
    name="tf32",
    kind="float",
    significand_bits=11,
    exponent_bits=8,
    storage_bits=32,
    np_dtype=np.dtype(np.float32),
    accumulate_dtype=np.dtype(np.float32),
    description="NVIDIA TensorFloat-32 (19-bit value, FP32 storage)",
)

BF16 = Format(
    name="bf16",
    kind="float",
    significand_bits=8,
    exponent_bits=8,
    storage_bits=16,
    np_dtype=np.dtype(np.float32),
    accumulate_dtype=np.dtype(np.float32),
    description="bfloat16 (stored as rounded float32 in this library)",
)

FP16 = Format(
    name="fp16",
    kind="float",
    significand_bits=11,
    exponent_bits=5,
    storage_bits=16,
    np_dtype=np.dtype(np.float16),
    accumulate_dtype=np.dtype(np.float32),
    description="IEEE 754 binary16 (half precision)",
)

INT8 = Format(
    name="int8",
    kind="int",
    significand_bits=8,
    exponent_bits=0,
    storage_bits=8,
    np_dtype=np.dtype(np.int8),
    accumulate_dtype=np.dtype(np.int32),
    description="8-bit signed integer with INT32 accumulation",
)

INT32 = Format(
    name="int32",
    kind="int",
    significand_bits=32,
    exponent_bits=0,
    storage_bits=32,
    np_dtype=np.dtype(np.int32),
    accumulate_dtype=np.dtype(np.int64),
    description="32-bit signed integer",
)

#: Mapping from canonical name to :class:`Format` instance.
FORMATS: dict[str, Format] = {
    fmt.name: fmt for fmt in (FP64, FP32, TF32, BF16, FP16, INT8, INT32)
}

#: Aliases accepted by :func:`get_format`.
_ALIASES: dict[str, str] = {
    "float64": "fp64",
    "double": "fp64",
    "f64": "fp64",
    "float32": "fp32",
    "single": "fp32",
    "f32": "fp32",
    "half": "fp16",
    "float16": "fp16",
    "bfloat16": "bf16",
    "tensorfloat32": "tf32",
    "i8": "int8",
    "i32": "int32",
}


def get_format(name: str | Format) -> Format:
    """Return the :class:`Format` for ``name``.

    Accepts canonical names, common aliases (``"double"``, ``"float32"``,
    ...), or an existing :class:`Format` (returned unchanged).
    """
    if isinstance(name, Format):
        return name
    key = str(name).strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return FORMATS[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown number format {name!r}; known formats: {sorted(FORMATS)}"
        ) from None


def unit_roundoff(fmt: str | Format) -> float:
    """Unit roundoff (2**-p) of a floating-point format given by name."""
    return get_format(fmt).machine_epsilon


def working_dtype(precision: str | Format) -> np.dtype:
    """NumPy dtype used for the *target* precision of an emulation.

    DGEMM emulation targets FP64 and works internally in float64; SGEMM
    emulation targets FP32 but still performs scaling and accumulation in
    float64 as in the paper (only the final result is in float32 semantics).
    """
    fmt = get_format(precision)
    if fmt not in (FP64, FP32):
        raise ConfigurationError(
            f"emulation targets must be fp64 or fp32, got {fmt.name}"
        )
    return np.dtype(np.float64)


def result_dtype(precision: str | Format) -> np.dtype:
    """NumPy dtype of the emulated GEMM result (float64 or float32)."""
    fmt = get_format(precision)
    if fmt == FP64:
        return np.dtype(np.float64)
    if fmt == FP32:
        return np.dtype(np.float32)
    raise ConfigurationError(f"emulation targets must be fp64 or fp32, got {fmt.name}")


__all__ += ["working_dtype", "result_dtype"]
