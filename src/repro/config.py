"""Library-wide configuration objects and enumerations.

The central object is :class:`Ozaki2Config`, which captures every knob of
Algorithm 1 in the paper: the target precision (FP64 for DGEMM emulation,
FP32 for SGEMM emulation), the number of CRT moduli ``N``, the computing
mode (``fast`` or ``accurate``, Section 4.2), and implementation switches
(which residue kernel to use, whether to block over ``k``).
"""

from __future__ import annotations

import dataclasses
import enum
import math
import os
import warnings
from typing import Optional, Union

from .errors import ConfigurationError, ValidationError
from .types import FP32, FP64, Format, get_format

__all__ = [
    "ComputeMode",
    "ResidueKernel",
    "Ozaki2Config",
    "MAX_MODULI",
    "MAX_K_WITHOUT_BLOCKING",
    "DEFAULT_MODULI_DGEMM",
    "DEFAULT_MODULI_SGEMM",
    "AUTO",
]

#: Maximum number of moduli supported by the constant tables (Section 4.1:
#: "To prevent the table size from becoming excessive, we assume N <= 20").
MAX_MODULI: int = 20

#: Largest inner dimension for which a single INT8->INT32 product is exact
#: (Section 4.3: "We assume that k <= 2^17").
MAX_K_WITHOUT_BLOCKING: int = 2**17

#: Default number of moduli giving DGEMM-level accuracy for HPL-like inputs
#: (Section 5.1: "HPL can employ emulation with 14 or 15 moduli").
DEFAULT_MODULI_DGEMM: int = 15

#: Default number of moduli giving SGEMM-level accuracy (Section 5.1).
DEFAULT_MODULI_SGEMM: int = 8

#: Sentinel accepted by ``num_moduli`` (accuracy-driven selection, see
#: :mod:`repro.crt.adaptive`) and by ``parallelism`` (one worker per CPU,
#: clamped to ``os.cpu_count()``).
AUTO: str = "auto"


class ComputeMode(str, enum.Enum):
    """Computing mode of the Ozaki scheme II conversion step (Section 4.2).

    ``FAST`` determines the scale vectors from a Cauchy–Schwarz bound on the
    rows of ``A`` / columns of ``B``; ``ACCURATE`` estimates the bound with a
    direct ``ceil(|A|)·ceil(|B|)`` product on the INT8 engine, which costs one
    extra INT8 GEMM but reduces the truncation error.
    """

    FAST = "fast"
    ACCURATE = "accurate"

    @classmethod
    def parse(cls, value: "ComputeMode | str") -> "ComputeMode":
        """Coerce a string (``"fast"``/``"accurate"``/``"accu"``) to a mode."""
        if isinstance(value, cls):
            return value
        key = str(value).strip().lower()
        if key in ("fast", "f"):
            return cls.FAST
        if key in ("accurate", "accu", "a"):
            return cls.ACCURATE
        raise ConfigurationError(f"unknown compute mode {value!r}")


class ResidueKernel(str, enum.Enum):
    """Which implementation computes ``rmod(X, p_i)`` in Algorithm 1.

    ``EXACT`` uses IEEE-exact ``fmod``-based remainders (the mathematically
    clean definition); ``FAST_FMA`` reproduces the paper's FMA-based kernel
    of Section 4.2 (reciprocal multiply + FMA correction steps), which is the
    high-throughput variant used on GPUs and is exact for the ``N`` ranges
    stated in the paper.
    """

    EXACT = "exact"
    FAST_FMA = "fast_fma"

    @classmethod
    def parse(cls, value: "ResidueKernel | str") -> "ResidueKernel":
        if isinstance(value, cls):
            return value
        key = str(value).strip().lower()
        for member in cls:
            if key == member.value:
                return member
        raise ConfigurationError(f"unknown residue kernel {value!r}")


@dataclasses.dataclass(frozen=True)
class Ozaki2Config:
    """Configuration of one Ozaki scheme II emulated GEMM.

    Parameters
    ----------
    precision:
        Target precision: ``"fp64"`` for DGEMM emulation or ``"fp32"`` for
        SGEMM emulation.
    num_moduli:
        Number ``N`` of pairwise-coprime moduli (2..20).  More moduli means
        a larger ``P`` in condition (3) of the paper, hence smaller
        truncation error and higher accuracy, at the cost of ``N`` INT8
        GEMMs.  The string ``"auto"`` requests accuracy-driven selection
        per call: the a-priori error model of :mod:`repro.crt.adaptive`
        picks the smallest ``N`` whose guaranteed bound meets
        ``target_accuracy`` for the call's ``(k, max|A|, max|B|)``.  An
        auto configuration is *resolved* to a concrete one at every entry
        point (the result objects report the selected ``N``), and the
        resolved run is bit-identical to a fixed-``N`` run at the selected
        count — the fixed route is the verification comparator, exactly
        like ``fused_kernels``/``gemv_fast_path``.
    target_accuracy:
        Relative accuracy target of auto selection, interpreted against
        the natural element scale ``k·max|A|·max|B|``.  ``None`` (default)
        uses :data:`repro.crt.adaptive.DEFAULT_TARGET_ACCURACY` for the
        precision (1e-10 for fp64, 1e-5 for fp32 — the library's solver
        tolerances).  Ignored when ``num_moduli`` is a fixed count.
        Degenerate values — zero, negative, NaN, infinite, or ≥ 1 — raise
        :class:`~repro.errors.ValidationError` at construction; they must
        never reach the selection math.
    selection_model:
        Which error model auto selection consults: ``"calibrated"``
        (default) may lower the moduli count past the rigorous selection
        when the measured calibration's margin test passes
        (:mod:`repro.crt.calibration`), falling back to the rigorous
        bound otherwise; ``"rigorous"`` uses the guaranteed a-priori
        bound alone.  Both are magnitude-invariant and bit-identical to a
        fixed-``N`` run at the selected count; results record which model
        decided (``moduli_selection.decided_by``).  Ignored when
        ``num_moduli`` is a fixed count.
    mode:
        ``ComputeMode.FAST`` or ``ComputeMode.ACCURATE`` (Section 4.2).
    residue_kernel:
        Implementation used for ``rmod`` (see :class:`ResidueKernel`).
    block_k:
        If True (default), inner dimensions larger than ``2**17`` are
        processed in blocks so the INT32 accumulator never wraps
        (Section 4.3).  If False, such inputs raise
        :class:`~repro.errors.OverflowRiskError`.
    validate:
        If True (default), public entry points validate shapes, dtypes and
        finiteness of the inputs.
    parallelism:
        Number of worker threads used by the execution runtime to fan the
        ``N`` residue GEMMs / k-blocks / output tiles out
        (:mod:`repro.runtime`).  ``1`` (default) runs strictly serially in
        the calling thread.  The string ``"auto"`` resolves to
        ``os.cpu_count()`` at construction — clamped to the host, it can
        never over-subscribe.  Explicit integers must be positive — ``0``
        and negatives raise :class:`~repro.errors.ConfigurationError`
        (``--parallel 0`` on the CLI maps to one-worker-per-CPU) — and a
        count beyond ``os.cpu_count()`` emits a one-line warning (once per
        count): oversubscribed pools are *slower* than serial on small
        hosts (see ``benchmarks/results/runtime_scaling.txt``).  Results
        are bit-identical for every setting.
    executor:
        Which kind of worker pool the runtime fans out over when
        ``parallelism > 1``.  ``"thread"`` (default) uses a
        ``ThreadPoolExecutor`` — only the GIL-releasing BLAS calls scale.
        ``"process"`` uses the persistent worker-process pool of
        :mod:`repro.runtime.process`: residue stacks travel through shared
        memory (never pickled), and residue conversion, CRT accumulation
        and reconstruction parallelise too.  ``"auto"`` picks processes
        whenever more than one worker is configured (and the platform has
        a ``multiprocessing`` start method), threads otherwise.  Results
        and merged op ledgers are **bit-identical** for every setting.
    max_pool_rebuilds:
        How many worker-*pool* failures (a worker process dying mid-wave,
        pool construction failing) the process executor survives by
        rebuilding the pool and re-executing the lost dispatch wave before
        it *degrades* to the thread path for the rest of the scheduler's
        life.  Degradation is bit-identical, recorded in the op-ledger
        (``fault_events["degraded_to_thread"]``) and on
        :attr:`Result.degraded <repro.result.Result.degraded>` — never
        silent.  Default 2; 0 degrades on the first pool failure.
    memory_budget_mb:
        Optional cap (in MiB) on the residue-product workspace.  When set,
        the runtime tiles the output over m/n so that the transient
        ``(N, m_tile, n_tile)`` stacks stay within the budget; ``None``
        (default) computes the product in a single tile.
    fused_kernels:
        If True (default), run the fused kernel path: the ``N`` residue
        GEMMs are issued as stacked 3-D engine calls over modulus chunks,
        the residue conversion runs in a single broadcast pass, and the
        accumulation is vectorised over the U-stack.  If False, run the
        pre-fusion per-modulus loops instead.  Results and op ledgers are
        **bit-identical** either way — the loop path is kept as the
        verification comparator and for benchmarking the fusion speedup.
    gemv_fast_path:
        If True (default), matrix–vector products against a prepared
        operand (:func:`repro.apps.solvers.prepared_matvec`, i.e. every
        iteration of the iterative solvers) take the dedicated residue-GEMV
        kernel (:func:`repro.core.gemv.prepared_gemv`): one fused stacked
        engine GEMV, vector-shaped conversion, no
        :class:`~repro.runtime.plan.ExecutionPlan`/:class:`~repro.runtime.
        scheduler.Scheduler` machinery.  If False, route the product
        through the full ``n = 1`` GEMM path instead.  Results are
        **bit-identical** either way — and so are the op ledgers, unless a
        ``memory_budget_mb`` forces the GEMM comparator to tile its output
        into per-tile engine calls (the GEMV path never tiles).  The GEMM
        route is kept as the verification comparator (CLI: ``repro solve
        --no-gemv-fast``).
    """

    precision: Format = FP64
    num_moduli: Union[int, str] = DEFAULT_MODULI_DGEMM
    mode: ComputeMode = ComputeMode.FAST
    residue_kernel: ResidueKernel = ResidueKernel.EXACT
    block_k: bool = True
    validate: bool = True
    parallelism: Union[int, str] = 1
    executor: str = "thread"
    max_pool_rebuilds: int = 2
    memory_budget_mb: Optional[float] = None
    fused_kernels: bool = True
    gemv_fast_path: bool = True
    target_accuracy: Optional[float] = None
    selection_model: str = "calibrated"

    def __post_init__(self) -> None:
        fmt = get_format(self.precision)
        object.__setattr__(self, "precision", fmt)
        if fmt not in (FP64, FP32):
            raise ConfigurationError(
                f"Ozaki scheme II emulates fp64 or fp32 GEMM, got {fmt.name}"
            )
        mode = ComputeMode.parse(self.mode)
        object.__setattr__(self, "mode", mode)
        kernel = ResidueKernel.parse(self.residue_kernel)
        object.__setattr__(self, "residue_kernel", kernel)
        if isinstance(self.num_moduli, str):
            key = self.num_moduli.strip().lower()
            if key != AUTO:
                raise ConfigurationError(
                    f"num_moduli must be an integer in [2, {MAX_MODULI}] or "
                    f"{AUTO!r}, got {self.num_moduli!r}"
                )
            object.__setattr__(self, "num_moduli", AUTO)
        else:
            n = int(self.num_moduli)
            object.__setattr__(self, "num_moduli", n)
            if not (2 <= n <= MAX_MODULI):
                raise ConfigurationError(
                    f"num_moduli must be between 2 and {MAX_MODULI}, got {n}"
                )
        if self.target_accuracy is not None:
            # Degenerate targets are rejected here, with the degenerate
            # class named, so they can never reach the selection math
            # (where a NaN would silently fail every comparison and a 0
            # would clamp to MAX_MODULI with met=False "by accident").
            target = float(self.target_accuracy)
            if math.isnan(target):
                raise ValidationError(
                    "target_accuracy must lie in (0, 1), got NaN"
                )
            if math.isinf(target):
                raise ValidationError(
                    f"target_accuracy must lie in (0, 1), got {target} (infinite)"
                )
            if target <= 0.0:
                raise ValidationError(
                    f"target_accuracy must lie in (0, 1), got {target} "
                    "(zero or negative targets are unreachable by construction)"
                )
            if target >= 1.0:
                raise ValidationError(
                    f"target_accuracy must lie in (0, 1), got {target} "
                    "(a relative target of 1 or more asks for no accuracy at all)"
                )
            object.__setattr__(self, "target_accuracy", target)
        selection_model = str(self.selection_model).strip().lower()
        if selection_model not in ("rigorous", "calibrated"):
            raise ConfigurationError(
                "selection_model must be 'rigorous' or 'calibrated', got "
                f"{self.selection_model!r}"
            )
        object.__setattr__(self, "selection_model", selection_model)
        cpus = max(1, os.cpu_count() or 1)
        if isinstance(self.parallelism, str):
            key = self.parallelism.strip().lower()
            if key != AUTO:
                raise ConfigurationError(
                    f"parallelism must be a positive worker count or {AUTO!r}, "
                    f"got {self.parallelism!r}"
                )
            # "auto" clamps to the host: one worker per CPU, never more.
            workers = cpus
        else:
            workers = int(self.parallelism)
            if workers <= 0:
                raise ConfigurationError(
                    f"parallelism must be a positive worker count, got {workers} "
                    "(use parallelism='auto' — or --parallel 0 on the CLI — for "
                    "one worker per CPU)"
                )
            if workers > cpus:
                # Deduplication is left to the warnings machinery (the
                # default filter shows one occurrence per call site), so
                # standard filters/pytest.warns keep full control.
                warnings.warn(
                    f"parallelism={workers} over-subscribes this host "
                    f"({cpus} CPU{'s' if cpus != 1 else ''}); oversubscribed "
                    "worker pools measure slower than serial (see "
                    "benchmarks/results/runtime_scaling.txt) — consider "
                    "parallelism='auto'",
                    RuntimeWarning,
                    stacklevel=3,
                )
        object.__setattr__(self, "parallelism", workers)
        executor = str(self.executor).strip().lower()
        if executor not in ("thread", "process", AUTO):
            raise ConfigurationError(
                f"executor must be 'thread', 'process' or {AUTO!r}, "
                f"got {self.executor!r}"
            )
        object.__setattr__(self, "executor", executor)
        rebuilds = int(self.max_pool_rebuilds)
        if rebuilds < 0:
            raise ConfigurationError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds!r}"
            )
        object.__setattr__(self, "max_pool_rebuilds", rebuilds)
        object.__setattr__(self, "fused_kernels", bool(self.fused_kernels))
        object.__setattr__(self, "gemv_fast_path", bool(self.gemv_fast_path))
        if self.memory_budget_mb is not None:
            budget = float(self.memory_budget_mb)
            if not budget > 0.0:
                # `not (x > 0)` also catches NaN, which every comparison fails.
                raise ConfigurationError(
                    f"memory_budget_mb must be positive, got {budget}"
                )
            object.__setattr__(self, "memory_budget_mb", budget)

    @property
    def is_dgemm(self) -> bool:
        """True when this configuration emulates DGEMM (FP64 target)."""
        return self.precision == FP64

    @property
    def is_sgemm(self) -> bool:
        """True when this configuration emulates SGEMM (FP32 target)."""
        return self.precision == FP32

    @property
    def moduli_is_auto(self) -> bool:
        """True when ``num_moduli`` requests accuracy-driven selection."""
        return self.num_moduli == AUTO

    @property
    def method_name(self) -> str:
        """Name in the paper's nomenclature, e.g. ``"OS II-fast-14"``.

        An unresolved auto configuration reports ``"OS II-<mode>-auto"``;
        results always carry the resolved configuration with the selected
        count.
        """
        mode = "fast" if self.mode is ComputeMode.FAST else "accu"
        return f"OS II-{mode}-{self.num_moduli}"

    def resolved(self, num_moduli: int) -> "Ozaki2Config":
        """Concrete copy of an auto configuration at the selected count.

        No-op guard included: resolving a fixed configuration to its own
        count returns an equal configuration.
        """
        return dataclasses.replace(self, num_moduli=int(num_moduli))

    def replace(self, **kwargs) -> "Ozaki2Config":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    @classmethod
    def for_dgemm(
        cls,
        num_moduli: int = DEFAULT_MODULI_DGEMM,
        mode: "ComputeMode | str" = ComputeMode.FAST,
        **kwargs,
    ) -> "Ozaki2Config":
        """Convenience constructor for DGEMM emulation."""
        return cls(precision=FP64, num_moduli=num_moduli, mode=mode, **kwargs)

    @classmethod
    def for_sgemm(
        cls,
        num_moduli: int = DEFAULT_MODULI_SGEMM,
        mode: "ComputeMode | str" = ComputeMode.FAST,
        **kwargs,
    ) -> "Ozaki2Config":
        """Convenience constructor for SGEMM emulation."""
        return cls(precision=FP32, num_moduli=num_moduli, mode=mode, **kwargs)
