"""High-precision reference GEMM.

The measured accuracy of an FP64-level emulation is meaningless when the
reference itself is a plain FP64 GEMM (its own rounding error is of the same
order).  The paper evaluates against a high-precision reference; this module
fills that role with two independent implementations:

:func:`reference_gemm` (``algorithm="split"``, default)
    An error-free-transformation reference: each operand is decomposed into
    fixed-point chunks small enough that every chunk-pair product is *exact*
    in a float64 BLAS GEMM; the exact partial products are then combined in
    double-double.  Retains ~120+ significand bits relative to each row/
    column scale and runs at BLAS speed.

:func:`reference_gemm` (``algorithm="doubledouble"``)
    A direct compensated double-double GEMM (two_prod + compensated
    accumulation over the inner dimension).  Slower (pure NumPy loop over
    ``k``) but completely independent of the splitting idea; the test suite
    cross-validates the two implementations against each other and against
    an exact Python-integer product on integer matrices.

:func:`exact_int_gemm`
    Fully exact product of integer matrices using Python integers (for CRT
    unit tests on small problems).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..utils.doubledouble import dd_add
from ..utils.fma import two_prod, two_sum
from ..utils.fp import exponent_floor, pow2
from ..utils.validation import check_gemm_operands

__all__ = ["reference_gemm", "exact_int_gemm"]


# ---------------------------------------------------------------------------
# split (error-free transformation) reference
# ---------------------------------------------------------------------------

def _chunk_width(k: int) -> int:
    """Bits per fixed-point chunk so chunk-pair GEMMs are exact in float64.

    Two chunks of ``w`` bits multiplied and summed over ``k`` terms stay
    below ``2^(2w + log2 k)``, which must not exceed the 53-bit exact-integer
    range of float64.
    """
    head = 52 - int(math.ceil(math.log2(max(k, 2))))
    return max(8, head // 2)


def _scales(x: np.ndarray, axis: int) -> np.ndarray:
    """Power-of-two scales mapping each row/column max magnitude into [1/2, 1)."""
    max_abs = np.max(np.abs(x), axis=axis)
    exps = np.where(max_abs > 0, -(exponent_floor(max_abs) + 1), 0)
    return pow2(exps.astype(np.int64))


def _fixed_point_chunks(x_scaled: np.ndarray, num_chunks: int, width: int) -> List[np.ndarray]:
    """Error-free decomposition of a matrix with entries in (-1, 1).

    Returns float64 matrices ``D_1..D_S`` of integers below ``2^width`` such
    that ``x = Σ_s D_s 2^{-s·width} + r`` with ``|r| < 2^{-S·width}``.
    """
    residual = np.asarray(x_scaled, dtype=np.float64).copy()
    chunks: List[np.ndarray] = []
    for s in range(1, num_chunks + 1):
        shifted = np.ldexp(residual, width * s)
        piece = np.trunc(shifted)
        chunks.append(piece)
        residual = residual - np.ldexp(piece, -width * s)
    return chunks


def _split_reference(a: np.ndarray, b: np.ndarray, num_chunks: int) -> np.ndarray:
    m, k = a.shape
    n = b.shape[1]
    width = _chunk_width(k)

    row_scale = _scales(a, axis=1)
    col_scale = _scales(b, axis=0)
    a_chunks = _fixed_point_chunks(a * row_scale[:, None], num_chunks, width)
    b_chunks = _fixed_point_chunks(b * col_scale[None, :], num_chunks, width)

    hi = np.zeros((m, n), dtype=np.float64)
    lo = np.zeros((m, n), dtype=np.float64)
    # Accumulate small-weight terms first so the double-double sum keeps them.
    pairs = [
        (s, t)
        for s in range(1, num_chunks + 1)
        for t in range(1, num_chunks + 1)
        if s + t <= num_chunks + 1
    ]
    for s, t in sorted(pairs, key=lambda st: -(st[0] + st[1])):
        exact_product = a_chunks[s - 1] @ b_chunks[t - 1]  # exact by construction
        term = np.ldexp(exact_product, -width * (s + t))
        hi, lo = dd_add((hi, lo), (term, np.zeros_like(term)))
    result = hi + lo
    return result * (1.0 / row_scale)[:, None] * (1.0 / col_scale)[None, :]


# ---------------------------------------------------------------------------
# direct double-double reference
# ---------------------------------------------------------------------------

def _dd_dot_block(a_block: np.ndarray, b_block: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Compensated double-double accumulation of ``a_block @ b_block``."""
    m = a_block.shape[0]
    n = b_block.shape[1]
    hi = np.zeros((m, n), dtype=np.float64)
    lo = np.zeros((m, n), dtype=np.float64)
    for idx in range(a_block.shape[1]):
        col = a_block[:, idx][:, None]
        row = b_block[idx, :][None, :]
        p, e = two_prod(col, row)
        s, carry = two_sum(hi, p)
        lo = lo + (carry + e)
        hi = s
        if (idx & 0x3F) == 0x3F:
            hi, lo = two_sum(hi, lo)
    return two_sum(hi, lo)


def _doubledouble_reference(a: np.ndarray, b: np.ndarray, block_k: int = 256) -> np.ndarray:
    m, k = a.shape
    n = b.shape[1]
    hi = np.zeros((m, n), dtype=np.float64)
    lo = np.zeros((m, n), dtype=np.float64)
    for start in range(0, k, block_k):
        stop = min(start + block_k, k)
        bh, bl = _dd_dot_block(a[:, start:stop], b[start:stop, :])
        hi, lo = dd_add((hi, lo), (bh, bl))
    return hi + lo


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

def reference_gemm(
    a: np.ndarray,
    b: np.ndarray,
    algorithm: str = "split",
    num_chunks: int = 6,
) -> np.ndarray:
    """High-precision reference product, rounded to float64 at the end.

    Parameters
    ----------
    a, b:
        Operands (any float dtype; promoted to float64).
    algorithm:
        ``"split"`` (default, BLAS-speed error-free transformation) or
        ``"doubledouble"`` (direct compensated accumulation; slow, used for
        cross-validation).
    num_chunks:
        Number of fixed-point chunks per operand for the split algorithm.
        Six chunks retain well over 100 bits relative to each row/column
        scale.
    """
    a, b = check_gemm_operands(a, b, dtype=np.float64)
    if algorithm == "split":
        if num_chunks < 2:
            raise ConfigurationError("num_chunks must be at least 2")
        return _split_reference(a, b, num_chunks)
    if algorithm == "doubledouble":
        return _doubledouble_reference(a, b)
    raise ConfigurationError(
        f"unknown reference algorithm {algorithm!r}; use 'split' or 'doubledouble'"
    )


def exact_int_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact product of integer-valued matrices using Python integers.

    Returns an object-dtype array of Python ints.  Intended for small CRT
    correctness tests (cost is O(m·n·k) Python operations).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    a_obj = np.array([[int(v) for v in row] for row in a], dtype=object)
    b_obj = np.array([[int(v) for v in row] for row in b], dtype=object)
    return a_obj @ b_obj
