"""Error metrics used in the accuracy experiments (Figure 3)."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

import numpy as np

__all__ = ["relative_errors", "max_relative_error", "ErrorSummary", "summarize_errors"]


def relative_errors(
    computed: np.ndarray, reference: np.ndarray, floor: float = 0.0
) -> np.ndarray:
    """Elementwise relative error ``|computed - reference| / |reference|``.

    Elements whose reference magnitude is zero (or below ``floor``) use the
    largest reference magnitude as the denominator instead, so that a zero
    element produced by cancellation does not blow the metric up to
    infinity; this matches common practice for GEMM accuracy plots.
    """
    computed = np.asarray(computed, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if computed.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: computed {computed.shape} vs reference {reference.shape}"
        )
    abs_ref = np.abs(reference)
    denom_floor = max(float(floor), 0.0)
    fallback = float(np.max(abs_ref)) if abs_ref.size else 1.0
    if fallback == 0.0:
        fallback = 1.0
    denom = np.where(abs_ref > denom_floor, abs_ref, fallback)
    return np.abs(computed - reference) / denom


def max_relative_error(computed: np.ndarray, reference: np.ndarray) -> float:
    """Maximum elementwise relative error (the paper's Figure 3 metric)."""
    errs = relative_errors(computed, reference)
    return float(np.max(errs)) if errs.size else 0.0


@dataclasses.dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics of an elementwise relative-error field."""

    max: float
    median: float
    mean: float
    frobenius_relative: float

    def as_dict(self) -> Dict[str, float]:
        """Return the summary as a plain dict (for tables and CSV)."""
        return dataclasses.asdict(self)

    @property
    def max_log10(self) -> float:
        """log10 of the maximum relative error (convenient for plots)."""
        return math.log10(self.max) if self.max > 0 else -math.inf


def summarize_errors(computed: np.ndarray, reference: np.ndarray) -> ErrorSummary:
    """Compute :class:`ErrorSummary` for a computed/reference pair."""
    errs = relative_errors(computed, reference)
    ref = np.asarray(reference, dtype=np.float64)
    diff = np.asarray(computed, dtype=np.float64) - ref
    ref_norm = float(np.linalg.norm(ref))
    frob = float(np.linalg.norm(diff)) / ref_norm if ref_norm > 0 else float(np.linalg.norm(diff))
    return ErrorSummary(
        max=float(np.max(errs)),
        median=float(np.median(errs)),
        mean=float(np.mean(errs)),
        frobenius_relative=frob,
    )
