"""Quality-control harness: sensitivity sweeps and negative controls.

The calibrated selection model (:mod:`repro.crt.calibration`) rests on a
measured claim — "the rigorous bound's truncation term is at least
``margin + guard`` bits conservative on this band" — and measured claims
rot.  This module makes them machine-checkable per run:

sensitivity sweep
    :func:`sensitivity_sweep` measures the error of fixed-``N`` emulations
    against the double-double reference across workload families, seeds
    and moduli counts, and reports the observed conservatism of the
    rigorous truncation bound per case.  :func:`fit_margin_bits` reduces a
    sweep to per-(precision, mode, k-band) minima — the exact quantity the
    shipped :data:`~repro.crt.calibration.DEFAULT_CALIBRATION` entries
    record — so re-fitting after a scaling change is one function call.

negative controls
    :func:`negative_controls` runs configurations *designed to fail* (far
    too few moduli for the target) and checks that the measured error
    exceeds a loosened target.  If a control passes its target, the
    harness itself is broken — an error metric comparing a result to
    itself, a reference shortcut, a family generating zero matrices —
    and every green sensitivity number is meaningless.  The controls
    therefore gate the sweep: ``benchmarks/test_bench_calibration_qc.py``
    fails the run when any control unexpectedly meets its target.

Both feed the provenance-stamped artifact
``benchmarks/results/calibration_qc.txt`` (host, CPU count, git sha — see
:mod:`repro.harness.provenance`), so bound tightness is a machine-readable
trajectory across PRs, not a one-off table in a commit message.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import MAX_MODULI, Ozaki2Config
from ..core.gemm import ozaki2_gemm
from ..crt.adaptive import (
    DEFAULT_TARGET_ACCURACY,
    floor_relative_bound,
    select_num_moduli,
    truncation_relative_bound,
)
from ..crt.calibration import K_BANDS
from .reference import reference_gemm

__all__ = [
    "WORKLOAD_FAMILIES",
    "measured_relative_error",
    "measure_case",
    "sensitivity_sweep",
    "fit_margin_bits",
    "negative_controls",
]

#: How far (in bits) the truncation term must sit above the roundoff floor
#: for a case to count toward the fitted margin: below this the measured
#: error reflects the floor (which calibration never touches), not the
#: truncation conservatism being fit.
_TRUNC_DOMINANCE_BITS = 4.0

#: Factor by which :func:`negative_controls` loosens the default target,
#: per precision; a deliberately broken configuration must still exceed
#: the loosened value or the measurement plumbing is suspect.  fp32's
#: factor is smaller because the gap between a broken (N=2) and a working
#: configuration is only ~2 decades on the normalised metric — a 1e3
#: loosening would put the control target *above* the broken error.
_CONTROL_LOOSENING = {64: 1.0e3, 32: 1.0e1}

#: Families used as negative controls: well-scaled data only.  The phi
#: families are *not* valid controls — their exponential dynamic range
#: deflates the normalised error metric (most entries are tiny against
#: ``max|A|·max|B|``), so a broken configuration can sit near the metric
#: floor without the harness being broken.
_CONTROL_FAMILIES = ("gaussian", "uniform")

Generator = Callable[
    [np.random.Generator, int, int, int], Tuple[np.ndarray, np.ndarray]
]


def _gaussian(
    rng: np.random.Generator, m: int, k: int, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


def _uniform(
    rng: np.random.Generator, m: int, k: int, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    return rng.uniform(-1.0, 1.0, (m, k)), rng.uniform(-1.0, 1.0, (k, n))


def _phi_family(phi: float) -> Generator:
    """The paper's ``(rand − 0.5)·exp(phi·randn)`` dynamic-range family."""

    def generate(
        rng: np.random.Generator, m: int, k: int, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        a = (rng.random((m, k)) - 0.5) * np.exp(phi * rng.standard_normal((m, k)))
        b = (rng.random((k, n)) - 0.5) * np.exp(phi * rng.standard_normal((k, n)))
        return a, b

    return generate


#: The QC workload families: well-scaled dense data plus the paper's
#: exponential dynamic-range family at three severities.  The calibration
#: margins are minima over these — a new family belongs here first, and in
#: the calibration table only after the sweep has seen it.
WORKLOAD_FAMILIES: Dict[str, Generator] = {
    "gaussian": _gaussian,
    "uniform": _uniform,
    "phi0.5": _phi_family(0.5),
    "phi1": _phi_family(1.0),
    "phi2": _phi_family(2.0),
}


def measured_relative_error(
    a: np.ndarray, b: np.ndarray, value: np.ndarray
) -> float:
    """Max element error against the double-double reference, over
    ``k·max|A|·max|B|`` — the exact scale the adaptive bound is stated in.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    scale = (
        float(a.shape[1])
        * (float(np.max(np.abs(a))) if a.size else 0.0)
        * (float(np.max(np.abs(b))) if b.size else 0.0)
    )
    if scale == 0.0:
        return 0.0
    exact = reference_gemm(a, b)
    err = float(np.max(np.abs(exact - np.asarray(value, dtype=np.float64))))
    return err / scale


def _generate(
    family: str, m: int, k: int, n: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    try:
        generate = WORKLOAD_FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown QC family {family!r}; known: {sorted(WORKLOAD_FAMILIES)}"
        ) from None
    rng = np.random.default_rng(seed)
    return generate(rng, int(m), int(k), int(n))


def _case_rows(
    family: str,
    k: int,
    counts: Sequence[int],
    precision_bits: int,
    mode: str,
    m: int,
    n: int,
    seed: int,
) -> List[Dict[str, object]]:
    """Measure one (family, seed) cell at several moduli counts.

    The operands and the double-double reference are computed once per
    cell and shared across the counts — the reference is the expensive
    part of a sweep, and it does not depend on ``N``.
    """
    a, b = _generate(family, m, k, n, seed)
    scale = (
        float(k)
        * (float(np.max(np.abs(a))) if a.size else 0.0)
        * (float(np.max(np.abs(b))) if b.size else 0.0)
    )
    exact = reference_gemm(a, b) if scale > 0.0 else None
    floor = floor_relative_bound(k, precision_bits)
    rows: List[Dict[str, object]] = []
    for num_moduli in counts:
        config = Ozaki2Config(
            precision="fp64" if int(precision_bits) == 64 else "fp32",
            num_moduli=int(num_moduli),
            mode=mode,
        )
        value = ozaki2_gemm(a, b, config=config)
        if exact is None:
            measured = 0.0
        else:
            err = float(np.max(np.abs(exact - np.asarray(value, dtype=np.float64))))
            measured = err / scale
        trunc = truncation_relative_bound(k, num_moduli, precision_bits, mode)
        rigorous = trunc + floor
        margin = math.log2(trunc / measured) if measured > 0.0 else math.inf
        rows.append(
            {
                "family": family,
                "precision_bits": int(precision_bits),
                "mode": mode,
                "m": int(m),
                "k": int(k),
                "n": int(n),
                "seed": int(seed),
                "num_moduli": int(num_moduli),
                "measured_rel_error": measured,
                "rigorous_rel_bound": rigorous,
                "trunc_rel_bound": trunc,
                "floor_rel_bound": floor,
                "within_bound": measured <= rigorous,
                "observed_margin_bits": margin,
                "trunc_dominated": trunc >= floor * 2.0**_TRUNC_DOMINANCE_BITS,
            }
        )
    return rows


def measure_case(
    family: str,
    k: int,
    num_moduli: int,
    precision_bits: int = 64,
    mode: str = "fast",
    m: int = 64,
    n: int = 64,
    seed: int = 0,
) -> Dict[str, object]:
    """Measure one (family, k, N) cell: error, bounds, observed margin.

    The returned row carries the measured relative error, the rigorous
    bound and its truncation/floor split, ``within_bound`` (the rigorous
    bound held — it always must), the observed truncation margin in bits,
    and ``trunc_dominated`` (whether the cell is usable for margin
    fitting, see ``_TRUNC_DOMINANCE_BITS``).
    """
    return _case_rows(
        family, k, [int(num_moduli)], precision_bits, mode, m, n, seed
    )[0]


def _selection_counts(
    k: int, precision_bits: int, mode: str, span: int
) -> List[int]:
    """Moduli counts around the rigorous selection at the default target."""
    target = DEFAULT_TARGET_ACCURACY[int(precision_bits)]
    selected = select_num_moduli(
        k, 1.0, 1.0, precision_bits, target=target, mode=mode
    ).num_moduli
    low = max(2, selected - span)
    high = min(MAX_MODULI, selected + 1)
    return list(range(low, high + 1))


def sensitivity_sweep(
    families: Optional[Sequence[str]] = None,
    ks: Sequence[int] = (16, 64, 256, 1024),
    precisions: Sequence[int] = (64, 32),
    modes: Sequence[str] = ("fast", "accurate"),
    seeds: Sequence[int] = (0, 1),
    counts: Optional[Iterable[int]] = None,
    count_span: int = 3,
    m: int = 64,
    n: int = 64,
) -> List[Dict[str, object]]:
    """Measured error vs predicted bound across the workload families.

    One row per (precision, mode, k, family, seed, N) via
    :func:`measure_case`.  ``counts=None`` sweeps a neighbourhood of the
    rigorous selection at the default target (``count_span`` below it,
    one above); pass an explicit iterable to fit over a custom range.
    """
    families = list(families) if families is not None else list(WORKLOAD_FAMILIES)
    rows: List[Dict[str, object]] = []
    for bits in precisions:
        for mode in modes:
            for k in ks:
                ns = (
                    list(counts)
                    if counts is not None
                    else _selection_counts(k, bits, mode, count_span)
                )
                for family in families:
                    for seed in seeds:
                        rows.extend(
                            _case_rows(family, k, ns, bits, mode, m, n, seed)
                        )
    return rows


def fit_margin_bits(
    rows: Iterable[Dict[str, object]],
) -> Dict[Tuple[int, str], List[Tuple[int, int, float]]]:
    """Reduce a sweep to per-(precision, mode, k-band) margin minima.

    Only truncation-dominated cells participate (the floor is charged in
    full by both models, so cells at the floor measure nothing about the
    truncation conservatism).  Bands with no usable cell are omitted.
    The values are what :data:`repro.crt.calibration.DEFAULT_CALIBRATION`
    records as ``observed_margin_bits`` — the guard is applied at lookup
    time, not here.
    """
    minima: Dict[Tuple[int, str, int], float] = {}
    for row in rows:
        if not row["trunc_dominated"]:
            continue
        k = int(row["k"])  # type: ignore[arg-type]
        band = next(
            (i for i, (lo, hi) in enumerate(K_BANDS) if lo <= k <= hi), None
        )
        if band is None:
            continue
        key = (int(row["precision_bits"]), str(row["mode"]), band)  # type: ignore[arg-type]
        margin = float(row["observed_margin_bits"])  # type: ignore[arg-type]
        minima[key] = min(minima.get(key, math.inf), margin)
    fitted: Dict[Tuple[int, str], List[Tuple[int, int, float]]] = {}
    for (bits, mode, band), margin in sorted(minima.items()):
        lo, hi = K_BANDS[band]
        fitted.setdefault((bits, mode), []).append((lo, hi, margin))
    return fitted


def negative_controls(
    families: Optional[Sequence[str]] = None,
    k: int = 256,
    precisions: Sequence[int] = (64, 32),
    modes: Sequence[str] = ("fast", "accurate"),
    m: int = 64,
    n: int = 64,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Deliberately broken runs that *must* exceed a loosened target.

    Each control emulates with ``num_moduli=2`` — far below any selection
    for the default target at this ``k`` — and requires the measured
    error to exceed the default target loosened by the per-precision
    ``_CONTROL_LOOSENING`` factor.  Only the well-scaled
    ``_CONTROL_FAMILIES`` participate by default (see that constant for
    why the phi families cannot serve as controls).
    ``control_ok=False`` on any row means the harness cannot distinguish
    a broken configuration from a working one: fix the harness before
    trusting any sensitivity number.
    """
    families = (
        list(families) if families is not None else list(_CONTROL_FAMILIES)
    )
    rows: List[Dict[str, object]] = []
    for bits in precisions:
        loosened = DEFAULT_TARGET_ACCURACY[int(bits)] * _CONTROL_LOOSENING[int(bits)]
        for mode in modes:
            for family in families:
                case = measure_case(
                    family, k, 2, precision_bits=bits, mode=mode, m=m, n=n, seed=seed
                )
                measured = float(case["measured_rel_error"])  # type: ignore[arg-type]
                rows.append(
                    {
                        "family": family,
                        "precision_bits": int(bits),
                        "mode": mode,
                        "k": int(k),
                        "num_moduli": 2,
                        "measured_rel_error": measured,
                        "loosened_target": loosened,
                        "control_ok": measured > loosened,
                    }
                )
    return rows
