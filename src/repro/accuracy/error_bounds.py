"""A-priori error bounds for Ozaki scheme II.

The paper defers a rigorous error analysis to future work (end of
Section 4.3), but an a-priori *bound* on the dominant error source — the
truncation of ``diag(μ)·A`` and ``B·diag(ν)`` to integers — follows directly
from the scaling construction and is useful both for the moduli planner and
for validating the implementation.  The bound derived here is:

For fast mode, with per-side budget ``α = (log2(P−1) − 1.5)/2``, the scale of
row ``i`` satisfies ``1/μ_i ≤ 4·√(k)·2^{−α}·‖a_i‖₂`` (the budget, the floor
in the exponent, and the ``0.51`` slack in the norm estimate each contribute
a bounded factor), and the element-wise truncation of either operand is
below one integer unit.  Propagating both truncations through the product
gives the norm-wise bound

.. math::

    |(AB - C)_{ij}| \\;\\le\\; 16\\,(k+1)\\,2^{-α}\\,
        (1 + ‖a_i‖₂)(1 + ‖b_j‖₂)
        \\;+\\; u_{acc}\\,k\\,‖a_i‖₂\\,‖b_j‖₂

where ``u_acc`` is the accumulation/reconstruction roundoff (``2^{-52}`` for
DGEMM emulation, ``2^{-36}`` for SGEMM emulation, where ``P`` and the CRT
weights are stored as single float64 values).  The bound is deliberately
coarse (typically two to four orders of magnitude above the measured error)
but it is a true upper bound for this library's scaling construction, which
the test suite validates against measured errors across moduli counts.
"""

from __future__ import annotations

import numpy as np

from ..crt.constants import build_constant_table
from ..errors import ConfigurationError
from ..utils.validation import check_gemm_operands

__all__ = ["ozaki2_error_bound", "required_moduli_for_bound"]


def ozaki2_error_bound(
    a: np.ndarray, b: np.ndarray, num_moduli: int, precision_bits: int = 64
) -> np.ndarray:
    """Element-wise a-priori bound on ``|A@B - ozaki2_gemm(A, B)|``.

    The bound covers the truncation error of the integer conversion and the
    FP64 rounding of the reconstruction; it does not attempt to be tight
    (typically one to two orders of magnitude above the measured error) but
    it is a true upper bound for the library's scaling construction, which
    the property tests verify.
    """
    a, b = check_gemm_operands(a, b, dtype=np.float64)
    if precision_bits not in (32, 64):
        raise ConfigurationError("precision_bits must be 32 or 64")
    table = build_constant_table(num_moduli, precision_bits)
    alpha = 0.5 * (table.log2_P - 1.5)
    k = a.shape[1]

    row_norms = np.linalg.norm(a, axis=1)
    col_norms = np.linalg.norm(b, axis=0)
    truncation = (
        16.0
        * (k + 1)
        * 2.0 ** (-alpha)
        * np.outer(1.0 + row_norms, 1.0 + col_norms)
    )
    accumulation_eps = 2.0**-52 if precision_bits == 64 else 2.0**-36
    rounding = accumulation_eps * k * np.outer(row_norms, col_norms)
    return truncation + rounding


def required_moduli_for_bound(
    a: np.ndarray,
    b: np.ndarray,
    target_relative: float,
    precision_bits: int = 64,
    max_moduli: int = 20,
) -> int:
    """Smallest ``N`` whose a-priori bound meets a norm-wise relative target.

    ``target_relative`` is interpreted against the scale
    ``‖a_i‖₂ ‖b_j‖₂`` of each element (the natural scale for GEMM error
    analysis).  Raises when even ``max_moduli`` moduli cannot meet it.
    """
    a, b = check_gemm_operands(a, b, dtype=np.float64)
    if not (0 < target_relative < 1):
        raise ConfigurationError("target_relative must be in (0, 1)")
    scale = np.outer(np.linalg.norm(a, axis=1), np.linalg.norm(b, axis=0))
    scale = np.maximum(scale, np.finfo(np.float64).tiny)
    for n in range(2, max_moduli + 1):
        bound = ozaki2_error_bound(a, b, n, precision_bits)
        if np.all(bound / scale <= target_relative):
            return n
    raise ConfigurationError(
        f"cannot meet relative bound {target_relative} with up to {max_moduli} moduli"
    )
