"""Accuracy measurement: high-precision reference GEMM and error metrics.

Figure 3 of the paper plots the maximum elementwise relative error of each
emulation method against a high-precision reference.  This subpackage
provides that reference (a compensated double-double GEMM, ~106 bits) and
the error metrics used by the harness.
"""

from __future__ import annotations

from .error_bounds import ozaki2_error_bound, required_moduli_for_bound
from .metrics import ErrorSummary, max_relative_error, relative_errors, summarize_errors
from .reference import exact_int_gemm, reference_gemm

__all__ = [
    "ErrorSummary",
    "max_relative_error",
    "relative_errors",
    "summarize_errors",
    "exact_int_gemm",
    "reference_gemm",
    "ozaki2_error_bound",
    "required_moduli_for_bound",
]
