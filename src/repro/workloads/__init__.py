"""Workload generators used in the paper's evaluation."""

from __future__ import annotations

from .generators import (
    WorkloadSpec,
    adversarial_cancellation_matrix,
    diagonally_dominant_matrix,
    hpl_like_pair,
    ill_conditioned_spd_matrix,
    linear_system,
    phi_matrix,
    phi_pair,
    spd_matrix,
)

__all__ = [
    "WorkloadSpec",
    "adversarial_cancellation_matrix",
    "diagonally_dominant_matrix",
    "hpl_like_pair",
    "ill_conditioned_spd_matrix",
    "linear_system",
    "phi_matrix",
    "phi_pair",
    "spd_matrix",
]
