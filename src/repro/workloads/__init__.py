"""Workload generators used in the paper's evaluation."""

from .generators import (
    WorkloadSpec,
    adversarial_cancellation_matrix,
    hpl_like_pair,
    phi_matrix,
    phi_pair,
)

__all__ = [
    "WorkloadSpec",
    "adversarial_cancellation_matrix",
    "hpl_like_pair",
    "phi_matrix",
    "phi_pair",
]
