"""Test-matrix generators (Section 5).

The paper generates its inputs as::

    a_ij, b_ij = (rand - 0.5) * exp(phi * randn)

where ``rand`` is uniform on (0, 1], ``randn`` is standard normal and
``phi`` controls the spread of the exponent distribution.  ``phi = 0.5``
empirically matches the exponent distribution of HPL's matrix
multiplications; larger ``phi`` values stress the emulation's dynamic range
(Figure 3 uses phi in {0.5, 1, 2, 4} for DGEMM and {0.5, 1, 1.5} for
SGEMM).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..errors import ValidationError
from ..types import FP32, FP64, Format, get_format

__all__ = [
    "WorkloadSpec",
    "phi_matrix",
    "phi_pair",
    "hpl_like_pair",
    "adversarial_cancellation_matrix",
    "diagonally_dominant_matrix",
    "spd_matrix",
    "ill_conditioned_spd_matrix",
    "linear_system",
]


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Description of one (A, B) workload for the harness.

    Attributes
    ----------
    m, k, n:
        Problem dimensions (``A`` is ``m x k``, ``B`` is ``k x n``).
    phi:
        Exponent-spread parameter of the generator.
    precision:
        Element format of the generated matrices (FP64 or FP32).
    seed:
        RNG seed (fixed seeds make every experiment reproducible, as the
        paper does with cuRAND).
    """

    m: int
    k: int
    n: int
    phi: float = 0.5
    precision: Format = FP64
    seed: int = 0

    def __post_init__(self) -> None:
        fmt = get_format(self.precision)
        object.__setattr__(self, "precision", fmt)
        for name in ("m", "k", "n"):
            value = int(getattr(self, name))
            if value < 1:
                raise ValidationError(f"{name} must be positive, got {value}")
            object.__setattr__(self, name, value)

    def generate(self) -> Tuple[np.ndarray, np.ndarray]:
        """Generate the (A, B) pair described by this spec."""
        return phi_pair(
            self.m, self.k, self.n, phi=self.phi, precision=self.precision, seed=self.seed
        )

    @property
    def label(self) -> str:
        """Short human-readable label for tables."""
        return f"m{self.m}k{self.k}n{self.n}_phi{self.phi:g}"


def phi_matrix(
    rows: int,
    cols: int,
    phi: float = 0.5,
    precision: "Format | str" = FP64,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """One matrix drawn from the paper's ``(rand-0.5)*exp(phi*randn)`` law."""
    fmt = get_format(precision)
    if fmt not in (FP64, FP32):
        raise ValidationError("workload precision must be fp64 or fp32")
    if rng is None:
        rng = np.random.default_rng(seed)
    uniform = rng.random((rows, cols))
    # rand in (0, 1]: the paper's generator excludes 0 so the sign factor
    # never collapses an element to exactly -0.5 * exp(...) == 0.
    uniform = 1.0 - uniform
    normal = rng.standard_normal((rows, cols))
    values = (uniform - 0.5) * np.exp(float(phi) * normal)
    return values.astype(fmt.np_dtype if fmt == FP32 else np.float64)


def phi_pair(
    m: int,
    k: int,
    n: int,
    phi: float = 0.5,
    precision: "Format | str" = FP64,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """The (A, B) pair used throughout Section 5."""
    rng = np.random.default_rng(seed)
    a = phi_matrix(m, k, phi=phi, precision=precision, rng=rng)
    b = phi_matrix(k, n, phi=phi, precision=precision, rng=rng)
    return a, b


def hpl_like_pair(
    m: int, k: int, n: int, precision: "Format | str" = FP64, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """HPL-like workload: the ``phi = 0.5`` setting singled out in Section 5.1."""
    return phi_pair(m, k, n, phi=0.5, precision=precision, seed=seed)


def adversarial_cancellation_matrix(
    rows: int,
    cols: int,
    magnitude_ratio: float = 1e8,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Matrix mixing large and tiny entries to stress truncation error.

    Half of each row is drawn near ``magnitude_ratio`` and half near 1, so
    row norms are dominated by a few huge entries while the small entries
    still matter for cancellation-prone products.  Used by the extended
    accuracy tests (not part of the paper's figures).
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    base = rng.standard_normal((rows, cols))
    mask = rng.random((rows, cols)) < 0.5
    return np.where(mask, base * float(magnitude_ratio), base)


def diagonally_dominant_matrix(
    n: int,
    phi: float = 0.5,
    dominance: float = 2.0,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Strictly row-diagonally-dominant system matrix (Jacobi-convergent).

    Off-diagonal entries follow the paper's ``phi`` law; each diagonal entry
    is set to ``dominance`` times the absolute row sum (``dominance > 1``
    guarantees Jacobi and Gauss–Seidel convergence).
    """
    if dominance <= 1.0:
        raise ValidationError(f"dominance must exceed 1, got {dominance}")
    if rng is None:
        rng = np.random.default_rng(seed)
    a = phi_matrix(n, n, phi=phi, rng=rng)
    np.fill_diagonal(a, 0.0)
    row_sums = np.abs(a).sum(axis=1)
    # Guard all-zero rows (n == 1): any positive diagonal keeps A nonsingular.
    np.fill_diagonal(a, float(dominance) * np.maximum(row_sums, 1.0))
    return a


def spd_matrix(
    n: int,
    phi: float = 0.5,
    shift: float = 1e-3,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Symmetric positive-definite system matrix (CG-convergent).

    Built as ``M·Mᵀ/n + shift·I`` from a ``phi``-law factor ``M``; the
    Gram product makes it symmetric positive semi-definite and the shift
    bounds the smallest eigenvalue away from zero.
    """
    if shift <= 0.0:
        raise ValidationError(f"shift must be positive, got {shift}")
    if rng is None:
        rng = np.random.default_rng(seed)
    m = phi_matrix(n, n, phi=phi, rng=rng)
    a = (m @ m.T) / float(n)
    a = 0.5 * (a + a.T)
    a[np.diag_indices_from(a)] += float(shift)
    return a


def ill_conditioned_spd_matrix(
    n: int,
    cond: float = 1e6,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """SPD matrix with a prescribed condition number (PCG stress family).

    Built as ``Q·diag(λ)·Qᵀ`` with a Haar-random orthogonal ``Q`` (QR of a
    Gaussian matrix) and eigenvalues log-spaced from 1 down to ``1/cond``.
    Plain CG needs O(√cond) iterations on this family, while a factored
    preconditioner (ILU(0), SSOR — :mod:`repro.apps.preconditioners`)
    collapses the count; the solver test matrix asserts that gap.
    """
    cond = float(cond)
    if cond < 1.0:
        raise ValidationError(f"cond must be at least 1, got {cond}")
    if rng is None:
        rng = np.random.default_rng(seed)
    if n == 1:
        return np.ones((1, 1))
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eigvals = np.logspace(0.0, -np.log10(cond), n)
    a = (q * eigvals[None, :]) @ q.T
    return 0.5 * (a + a.T)


def linear_system(
    n: int,
    kind: str = "diag_dominant",
    phi: float = 0.5,
    seed: int = 0,
    cond: float = 1e6,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A solvable system ``(A, b, x_true)`` with ``b = A @ x_true``.

    ``kind`` selects the matrix family: ``"diag_dominant"`` (Jacobi/general
    solvers), ``"spd"`` (conjugate gradients) or ``"ill_spd"`` (the
    prescribed-condition-number SPD family of
    :func:`ill_conditioned_spd_matrix`, controlled by ``cond`` — the
    preconditioned-CG stress case).  The reference solution is drawn from a
    standard normal so solver errors can be measured directly.
    """
    rng = np.random.default_rng(seed)
    if kind == "diag_dominant":
        a = diagonally_dominant_matrix(n, phi=phi, rng=rng)
    elif kind == "spd":
        a = spd_matrix(n, phi=phi, rng=rng)
    elif kind == "ill_spd":
        a = ill_conditioned_spd_matrix(n, cond=cond, rng=rng)
    else:
        raise ValidationError(
            f"unknown system kind {kind!r}; expected 'diag_dominant', 'spd' "
            "or 'ill_spd'"
        )
    x_true = rng.standard_normal(n)
    return a, a @ x_true, x_true
