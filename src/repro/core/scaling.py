"""Scale-vector determination (Section 4.2).

Before anything touches the INT8 engine, Algorithm 1 converts the inputs to
integer matrices ``A' = trunc(diag(μ)·A)`` and ``B' = trunc(B·diag(ν))``
with power-of-two scale vectors ``μ`` and ``ν`` chosen so that condition (3)
of the paper holds::

    2 · Σ_h |a'_ih| |b'_hj|  <  P        for every (i, j).

This guarantees that the CRT reconstruction of ``A'B'`` is unique.  Larger
scales retain more significand bits after the truncation, so the goal is to
pick the largest power-of-two scales that still satisfy the bound.

Two modes are provided, as in the paper:

fast mode
    bounds ``Σ_h |a'_ih||b'_hj|`` with the Cauchy–Schwarz inequality using
    row norms of ``A`` and column norms of ``B`` (computed as guaranteed
    upper bounds, see :func:`repro.utils.fp.round_up_sum_of_squares`);

accurate mode
    bounds it with a direct product ``C̄ = Ā·B̄`` of cheaply rounded-up
    magnitude matrices on the INT8 engine, which is tighter and therefore
    allows larger scales (smaller truncation error), at the cost of one
    extra INT8 GEMM.

Interpretation note
-------------------
The printed formulas in Section 4.2 use the full budget
``P'_fast = log2(P−1) − 1.5`` inside *both* ``μ`` and ``ν``; applied
literally this violates condition (3) (the two sides together would consume
``2·log2(P)`` bits).  This implementation follows the evident intent and
splits the budget evenly between the two sides: each side receives
``α = (log2(P−1) − 1.5) / 2``.  The ``−⌊log2 max_h |a_ih|⌋`` normalisation
term of the paper's formula is kept (it makes the scales independent of the
absolute data magnitude and immune to under/overflow of the row sums of
squares).  The resulting scales provably satisfy condition (3) (see the
derivation in ``tests/core/test_scaling.py`` and the property tests) and
reproduce the accuracy behaviour reported in Figure 3 (N≈14–15 for
DGEMM-level accuracy at k=1024, N≈7–8 for SGEMM-level accuracy).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..crt.constants import CRTConstantTable
from ..engines.base import MatrixEngine
from ..engines.int8 import Int8MatrixEngine
from ..errors import ValidationError
from ..utils.fp import exponent_floor, pow2, round_up_sum_of_squares

__all__ = [
    "scale_exponent_budget",
    "PrescaleBounds",
    "AccuratePrescale",
    "fast_mode_prescale",
    "scale_from_prescale",
    "fast_mode_scales",
    "fast_mode_scale_a",
    "fast_mode_scale_b",
    "accurate_mode_prescale",
    "accurate_scales_from_prescale",
    "accurate_mode_scales",
    "check_condition3",
]


def scale_exponent_budget(table: CRTConstantTable, mode: str) -> float:
    """Per-side exponent budget ``α`` derived from ``P``.

    ``fast`` mode uses ``α = P'_fast / 2`` and ``accurate`` mode uses
    ``α = P'_accu / 2`` where ``P'_fast``/``P'_accu`` are the constants of
    Section 4.1 (``log2(P−1) − 1.5`` and ``− 0.5``).  Splitting evenly
    between the A-side and the B-side guarantees condition (3); see the
    module docstring.
    """
    if mode == "fast":
        return 0.5 * float(table.P_fast)
    if mode == "accurate":
        # Use the fast budget rather than P'_accu/2 for the exponential part:
        # the direct-product bound is already tight, and the extra 0.5 bit of
        # headroom keeps condition (3) satisfied even when C̄ entries equal 1
        # (where the 0.51 slack factor provides no margin).
        return 0.5 * float(table.P_fast)
    raise ValidationError(f"unknown scaling mode {mode!r}")


@dataclasses.dataclass(frozen=True)
class PrescaleBounds:
    """The ``N``-independent inputs of one side's fast-mode scale formula.

    The fast-mode exponent of row/column ``i`` is
    ``⌊α(N) − t_i⌋ − M_i`` where only the budget ``α(N)`` depends on the
    moduli count; ``t_i = max(1, 0.51·log2 S_i)`` (the clamped norm
    estimate) and ``M_i = ⌊log2 max_h |a_ih|⌋`` are pure functions of the
    data.  Capturing them once lets a prepared operand re-derive its scale
    vector for *any* moduli count — bit-identically to a fresh scaling pass
    over the raw matrix — without touching the matrix again (see
    :meth:`repro.core.operand.ResidueOperand.resolve_for`).

    Attributes
    ----------
    axis:
        1 for the A side (per-row), 0 for the B side (per-column).
    clamp_term:
        ``max(1, 0.51·log2 S_i)`` per row/column (float64).
    m_exp:
        Floored exponents ``M_i`` (int64; 0 for zero rows/columns).
    max_abs:
        Per-row/column largest magnitudes (the scan the scaling pass
        performs anyway; ``float(global_max_abs)`` feeds auto-N selection).
    """

    axis: int
    clamp_term: np.ndarray
    m_exp: np.ndarray
    max_abs: np.ndarray

    def __post_init__(self) -> None:
        for name in ("clamp_term", "m_exp", "max_abs"):
            getattr(self, name).setflags(write=False)

    @property
    def global_max_abs(self) -> float:
        """``max|X|`` over the whole operand (0 for an all-zero operand)."""
        return float(np.max(self.max_abs)) if self.max_abs.size else 0.0


def fast_mode_prescale(x: np.ndarray, axis: int) -> PrescaleBounds:
    """Compute the ``N``-independent part of the fast-mode scale formula.

    Each row/column is first normalised by ``2^M`` where ``M`` is the floored
    exponent of its largest magnitude (the ``−⌊log2 max_h |a_ih|⌋`` term of
    the paper's formula); the sum of squares of the *normalised* vector then
    lies in ``[1, 4k]`` regardless of the absolute data scale, so it can
    neither underflow nor overflow, and the clamp ``max(1, 0.51·log2 S)`` is
    a true upper bound on ``log2`` of the normalised 2-norm.
    """
    max_abs = np.max(np.abs(x), axis=axis)
    m_exp = np.where(max_abs > 0, exponent_floor(max_abs), np.int64(0))
    normaliser = pow2((-m_exp).astype(np.int64))
    if axis == 1:
        normalised = x * normaliser[:, None]
    else:
        normalised = x * normaliser[None, :]
    s_norm = round_up_sum_of_squares(normalised, axis=axis)
    s_norm = np.maximum(s_norm, 1.0)
    clamp = np.maximum(1.0, 0.51 * np.log2(s_norm))
    return PrescaleBounds(axis=axis, clamp_term=clamp, m_exp=m_exp, max_abs=max_abs)


def scale_from_prescale(prescale: PrescaleBounds, alpha: float) -> np.ndarray:
    """Finalise a scale vector from cached pre-scale bounds and a budget.

    The exponent is ``⌊α − max(1, 0.51·log2 S_norm)⌋ − M`` (zero
    rows/columns get exponent 0), exactly the arithmetic of the one-shot
    path — so ``scale_from_prescale(fast_mode_prescale(x, axis), α)`` is
    bit-identical to the corresponding :func:`fast_mode_scale_a` /
    :func:`fast_mode_scale_b` call.
    """
    exps = np.floor(alpha - prescale.clamp_term) - prescale.m_exp
    exps = np.where(prescale.max_abs > 0, exps, 0.0)
    return pow2(exps.astype(np.int64))


def _fast_mode_exponents(x: np.ndarray, axis: int, alpha: float) -> np.ndarray:
    """Per-row (axis=1) or per-column (axis=0) scale exponents, fast mode.

    The exponent is ``⌊α − max(1, 0.51·log2 S_norm)⌋ − M`` which guarantees
    ``μ_i·‖a_i‖₂ ≤ 2^α`` (see the module docstring and
    :func:`fast_mode_prescale`).  Zero rows/columns get exponent 0.
    """
    prescale = fast_mode_prescale(x, axis)
    exps = np.floor(alpha - prescale.clamp_term) - prescale.m_exp
    return np.where(prescale.max_abs > 0, exps, 0.0)


def fast_mode_scale_a(a: np.ndarray, table: CRTConstantTable) -> np.ndarray:
    """Fast-mode scale vector ``μ`` (per row of A) alone.

    Fast mode derives each side's scales from that side only (Cauchy–Schwarz
    splits the budget per side), so ``μ`` can be computed — and cached, see
    :mod:`repro.core.operand` — without ever seeing ``B``.
    """
    alpha = scale_exponent_budget(table, "fast")
    return pow2(_fast_mode_exponents(a, axis=1, alpha=alpha).astype(np.int64))


def fast_mode_scale_b(b: np.ndarray, table: CRTConstantTable) -> np.ndarray:
    """Fast-mode scale vector ``ν`` (per column of B) alone."""
    alpha = scale_exponent_budget(table, "fast")
    return pow2(_fast_mode_exponents(b, axis=0, alpha=alpha).astype(np.int64))


def fast_mode_scales(
    a: np.ndarray, b: np.ndarray, table: CRTConstantTable
) -> Tuple[np.ndarray, np.ndarray]:
    """Scale vectors ``μ`` (per row of A) and ``ν`` (per column of B), fast mode.

    The exponent of ``μ_i`` is ``⌊α − max(1, 0.51·log2 S_i)⌋ − M_i`` where
    ``M_i = ⌊log2 max_h |a_ih|⌋`` and ``S_i`` is a guaranteed upper bound on
    the sum of squares of the row normalised by ``2^{M_i}``.  Because
    ``max(1, 0.51·log2 S_i) ≥ 0.5·log2 S_i = log2(‖a_i‖/2^{M_i})``, the
    product ``μ_i ‖a_i‖ ≤ 2^α`` and condition (3) follows from
    Cauchy–Schwarz.  Zero rows/columns get scale 1 (their contribution to
    ``A'B'`` is zero either way).
    """
    return fast_mode_scale_a(a, table), fast_mode_scale_b(b, table)


def _ceil_scaled_magnitude(x: np.ndarray, scale: np.ndarray, axis: int) -> np.ndarray:
    """``ceil(scale ⊙ |x|)`` broadcast along ``axis`` (rows or columns)."""
    if axis == 0:
        scaled = np.abs(x) * scale[:, None]
    else:
        scaled = np.abs(x) * scale[None, :]
    return np.ceil(scaled)


@dataclasses.dataclass(frozen=True)
class AccuratePrescale:
    """The per-side, ``N``-independent half of the accurate-mode scaling.

    Accurate mode couples the two sides through the bound product
    ``C̄ = Ā·B̄``, so a single side cannot finish its scale vector alone —
    but everything *before* the product is per-side and independent of the
    moduli count: the pre-scales ``μ' = 2^(5−⌊log2 max_h|a_ih|⌋)`` and the
    rounded-up magnitude matrix ``Ā = ceil(diag(μ')·|A|)``.  Capturing them
    at preparation time lets a prepared accurate-mode operand skip its half
    of the magnitude scan and round-up on every reuse — bit-identically to
    a fresh pass, because :func:`accurate_scales_from_prescale` performs
    exactly the arithmetic the one-shot path used to.

    Attributes
    ----------
    axis:
        Reduction axis of the magnitude scan: 1 for the A side (per-row),
        0 for the B side (per-column).
    scale_prime:
        The pre-scale vector ``μ'`` (A side) or ``ν'`` (B side), float64
        powers of two.
    magnitude:
        ``Ā`` / ``B̄`` — ``ceil`` of the pre-scaled magnitudes, entries in
        ``[0, 2^6]``, ready for the INT8 bound product.
    max_abs:
        Per-row/column largest magnitudes of the raw data.
    """

    axis: int
    scale_prime: np.ndarray
    magnitude: np.ndarray
    max_abs: np.ndarray

    def __post_init__(self) -> None:
        for name in ("scale_prime", "magnitude", "max_abs"):
            getattr(self, name).setflags(write=False)

    @property
    def global_max_abs(self) -> float:
        """``max|X|`` over the whole operand (0 for an all-zero operand)."""
        return float(np.max(self.max_abs)) if self.max_abs.size else 0.0


def accurate_mode_prescale(x: np.ndarray, axis: int) -> AccuratePrescale:
    """Compute one side's ``N``-independent accurate-mode pre-scale.

    ``axis=1`` treats ``x`` as the A side (per-row pre-scales), ``axis=0``
    as the B side (per-column).  The arithmetic is lifted verbatim from the
    one-shot :func:`accurate_mode_scales` so the split is bit-identical.
    """
    max_abs = np.max(np.abs(x), axis=axis)
    exp_prime = np.where(max_abs > 0, 5 - exponent_floor(max_abs), 0)
    scale_prime = pow2(exp_prime.astype(np.int64))
    magnitude = _ceil_scaled_magnitude(x, scale_prime, axis=1 - axis)
    return AccuratePrescale(
        axis=axis, scale_prime=scale_prime, magnitude=magnitude, max_abs=max_abs
    )


def accurate_scales_from_prescale(
    prescale_a: AccuratePrescale,
    prescale_b: AccuratePrescale,
    table: CRTConstantTable,
    engine: MatrixEngine | None = None,
    max_block_k: int = 2**17,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Finalise accurate-mode scales from two cached per-side pre-scales.

    Runs the coupled half of accurate mode: the blocked INT8 bound product
    ``C̄ = Ā·B̄`` followed by the row/column-max exponent formula.  Returns
    ``(μ, ν, C̄)`` exactly as :func:`accurate_mode_scales` does.
    """
    if prescale_a.axis != 1 or prescale_b.axis != 0:
        raise ValidationError(
            "accurate_scales_from_prescale needs an A-side prescale (axis=1) "
            f"and a B-side prescale (axis=0), got axes {prescale_a.axis} "
            f"and {prescale_b.axis}"
        )
    engine = engine or Int8MatrixEngine()
    alpha = scale_exponent_budget(table, "accurate")

    a_bar = prescale_a.magnitude
    b_bar = prescale_b.magnitude
    if a_bar.shape[1] != b_bar.shape[0]:
        raise ValidationError(
            f"prescale inner dimensions differ: A side has k={a_bar.shape[1]}, "
            f"B side has k={b_bar.shape[0]}"
        )

    # C̄ = Ā·B̄ on the INT8 engine, blocked over k so the INT32 accumulator
    # cannot overflow (entries are at most 2^6, so a block of 2^17 columns
    # stays below 2^29 < 2^31).
    k = a_bar.shape[1]
    c_bar = np.zeros((a_bar.shape[0], b_bar.shape[1]), dtype=np.float64)
    for start in range(0, k, max_block_k):
        stop = min(start + max_block_k, k)
        c_bar += engine.matmul(a_bar[:, start:stop], b_bar[start:stop, :]).astype(np.float64)

    row_max = np.maximum(np.max(c_bar, axis=1), 1.0)
    col_max = np.maximum(np.max(c_bar, axis=0), 1.0)

    exp_a = np.floor(alpha - 0.51 * np.log2(row_max))
    exp_b = np.floor(alpha - 0.51 * np.log2(col_max))
    mu = prescale_a.scale_prime * pow2(exp_a.astype(np.int64))
    nu = prescale_b.scale_prime * pow2(exp_b.astype(np.int64))
    return mu, nu, c_bar


def accurate_mode_scales(
    a: np.ndarray,
    b: np.ndarray,
    table: CRTConstantTable,
    engine: MatrixEngine | None = None,
    max_block_k: int = 2**17,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scale vectors in accurate mode (Section 4.2), plus the bound matrix.

    The magnitude matrices ``Ā = ceil(diag(μ')·|A|)`` and
    ``B̄ = ceil(|B|·diag(ν'))`` (entries at most ``2^6``) are multiplied on
    the INT8 engine; ``C̄ = Ā·B̄`` then bounds ``Σ_h |a_ih||b_hj|`` from
    above after undoing ``μ'``/``ν'``.  The final scales are::

        μ_i = μ'_i · 2^⌊α − 0.51·log2(max_h c̄_ih)⌋
        ν_j = ν'_j · 2^⌊α − 0.51·log2(max_h c̄_hj)⌋

    Returns ``(μ, ν, C̄)``; the last is exposed for diagnostics and tests.
    Implemented as :func:`accurate_mode_prescale` per side followed by
    :func:`accurate_scales_from_prescale`, the same two-phase split that
    prepared operands use — so prepared reuse is bit-identical by
    construction.
    """
    return accurate_scales_from_prescale(
        accurate_mode_prescale(a, axis=1),
        accurate_mode_prescale(b, axis=0),
        table,
        engine=engine,
        max_block_k=max_block_k,
    )


def check_condition3(
    a_prime: np.ndarray, b_prime: np.ndarray, table: CRTConstantTable
) -> bool:
    """Verify condition (3): ``2·max_ij Σ_h |a'_ih||b'_hj| < P``.

    This is an O(m·k·n) check intended for tests and debugging, not for the
    hot path.  It evaluates the bound with Python integers so that no
    rounding can mask a violation.
    """
    abs_prod = np.abs(a_prime) @ np.abs(b_prime)
    largest = float(np.max(abs_prod)) if abs_prod.size else 0.0
    # float64 comparison is conservative only if P fits; use exact integers.
    return 2 * int(np.ceil(largest)) < table.P_int
