"""Choosing the number of moduli for a target accuracy.

Section 5.1 of the paper observes that 14–15 moduli give DGEMM-level
accuracy and 7–8 give SGEMM-level accuracy for HPL-like matrices with
``k = 1024``.  This module turns that observation into a small model: the
number of significand bits the emulation retains is roughly the per-side
exponent budget minus half the inner-dimension growth, and we pick the
smallest ``N`` whose retained bits meet the target format's precision.
"""

from __future__ import annotations

import math

from ..config import MAX_MODULI
from ..crt.constants import build_constant_table
from ..errors import ConfigurationError
from ..types import FP32, FP64, Format, get_format

__all__ = ["estimate_retained_bits", "choose_num_moduli"]


def estimate_retained_bits(num_moduli: int, k: int, phi: float = 0.5) -> float:
    """Estimated significand bits retained by OS II with ``num_moduli`` moduli.

    The per-side scale budget is ``α = (log2(P−1) − 1.5)/2``; a row whose
    entries share a similar magnitude keeps about ``α − 0.5·log2(k)`` bits
    of each element after truncation (the row norm is ``≈ max|a|·sqrt(k)``).
    A wider exponent distribution (larger ``φ`` in the paper's generator)
    spreads element magnitudes over roughly ``φ·log2(e)·2`` extra binary
    orders, which come straight out of the retained bits of the smaller
    elements.
    """
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    table = build_constant_table(num_moduli, 64)
    alpha = 0.5 * (table.log2_P - 1.5)
    spread_penalty = 2.0 * float(phi) * math.log2(math.e)
    return alpha - 0.5 * math.log2(k) - 1.0 - spread_penalty


def choose_num_moduli(
    precision: "str | Format" = FP64,
    k: int = 1024,
    phi: float = 0.5,
    margin_bits: float = 0.0,
    max_moduli: int = MAX_MODULI,
) -> int:
    """Smallest ``N`` whose estimated retained bits reach the target precision.

    Parameters
    ----------
    precision:
        ``"fp64"`` or ``"fp32"`` — the emulation target.
    k:
        Inner dimension of the product.
    phi:
        Exponent-distribution parameter of the paper's workload generator
        (0.5 is HPL-like).
    margin_bits:
        Extra bits of safety margin on top of the format's precision.
    max_moduli:
        Upper limit on ``N`` (20 by default).

    Returns the chosen ``N``; raises if even ``max_moduli`` is insufficient.
    """
    fmt = get_format(precision)
    if fmt not in (FP64, FP32):
        raise ConfigurationError("precision must be fp64 or fp32")
    target_bits = fmt.significand_bits + float(margin_bits)
    for n in range(2, max_moduli + 1):
        if estimate_retained_bits(n, k, phi) >= target_bits:
            return n
    raise ConfigurationError(
        f"cannot reach {target_bits} bits with up to {max_moduli} moduli "
        f"(k={k}, phi={phi}); reduce k, phi, or the margin"
    )
