"""Blocking over the inner dimension for very large ``k`` (Section 4.3).

A single INT8 GEMM is exact in INT32 only while ``k ≤ 2^17``.  For larger
inner dimensions, the product of each residue pair is evaluated block by
block; the partial INT32 results are accumulated in INT64 (exact, since each
partial is below 2^31 and the number of blocks is tiny) before the modular
reduction.  The reduction to ``U_i`` is unaffected because congruence is
preserved by exact addition.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..engines.base import MatrixEngine

__all__ = ["k_block_ranges", "blocked_residue_products"]


def k_block_ranges(k: int, max_block_k: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` pairs covering ``range(k)`` in blocks."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if max_block_k <= 0:
        raise ValueError(f"max_block_k must be positive, got {max_block_k}")
    for start in range(0, k, max_block_k):
        yield start, min(start + max_block_k, k)


def blocked_residue_products(
    engine: MatrixEngine,
    a_slices: np.ndarray,
    b_slices: np.ndarray,
    max_block_k: int,
) -> np.ndarray:
    """Compute ``C'_i = A'_i · B'_i`` for every modulus, blocking over ``k``.

    Parameters
    ----------
    engine:
        INT8 matrix engine.
    a_slices / b_slices:
        INT8 stacks of shape ``(N, m, k)`` and ``(N, k, n)``.
    max_block_k:
        Maximum inner dimension per engine call (``2^17`` per Section 4.3).

    Returns
    -------
    Integer array of shape ``(N, m, n)``.  When no blocking is needed the
    dtype is INT32 (the raw engine output); with blocking the partial sums
    are held exactly in INT64.
    """
    n_mod, m, k = a_slices.shape
    n_cols = b_slices.shape[2]
    if b_slices.shape[0] != n_mod or b_slices.shape[1] != k:
        raise ValueError(
            f"mismatched residue stacks: A slices {a_slices.shape}, "
            f"B slices {b_slices.shape}"
        )
    if k <= max_block_k:
        out = np.empty((n_mod, m, n_cols), dtype=np.int32)
        for i in range(n_mod):
            out[i] = engine.matmul(a_slices[i], b_slices[i])
        return out

    out64 = np.zeros((n_mod, m, n_cols), dtype=np.int64)
    for start, stop in k_block_ranges(k, max_block_k):
        for i in range(n_mod):
            partial = engine.matmul(a_slices[i, :, start:stop], b_slices[i, start:stop, :])
            out64[i] += partial.astype(np.int64)
    return out64
