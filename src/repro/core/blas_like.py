"""BLAS-style front end for the emulated GEMM.

The paper's implementation (GEMMul8) exposes a ``cublasGemmEx``-compatible
interface so existing applications can swap it in.  This module provides the
Python equivalent: a :func:`gemm` function with the full BLAS semantics

.. math::

    C \\leftarrow \\alpha\\, \\mathrm{op}(A)\\,\\mathrm{op}(B) + \\beta\\, C

where ``op`` is identity, transpose, or conjugate-transpose, and the product
is evaluated by any method known to the registry (``"OS II-fast-15"``,
``"DGEMM"``, ``"ozIMMU_EF-9"``, ...).  The α/β update is performed in the
target precision, exactly as cuBLAS does around the emulated product.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..baselines.registry import get_method
from ..errors import ValidationError
from ..types import FP32, FP64, Format, get_format, result_dtype
from ..utils.validation import ensure_2d

__all__ = ["gemm"]

_TRANS_CODES = {"n": "n", "t": "t", "c": "c"}


def _apply_op(x: np.ndarray, trans: str, name: str) -> np.ndarray:
    code = str(trans).strip().lower()[:1]
    if code not in _TRANS_CODES:
        raise ValidationError(f"{name}: transpose code must be 'N', 'T' or 'C', got {trans!r}")
    if code == "n":
        return x
    if code == "t":
        return x.T
    return np.conjugate(x).T


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    alpha: float = 1.0,
    beta: float = 0.0,
    c: Optional[np.ndarray] = None,
    trans_a: str = "N",
    trans_b: str = "N",
    method: str = "OS II-fast-15",
    precision: "str | Format | None" = None,
) -> np.ndarray:
    """General matrix multiply ``alpha*op(A)@op(B) + beta*C`` via any method.

    Parameters
    ----------
    a, b:
        Input matrices (real).  Complex inputs are not supported — the paper
        targets real GEMM; a complex product can be assembled from four real
        emulated products by the caller.
    alpha, beta:
        BLAS scaling factors.
    c:
        Matrix to update when ``beta != 0``; also defines the output buffer
        shape.  A fresh array is returned either way (inputs are not
        mutated).
    trans_a, trans_b:
        ``"N"``, ``"T"`` or ``"C"`` per operand.
    method:
        Any method name accepted by
        :func:`repro.baselines.registry.get_method`.
    precision:
        Target precision for the emulation (``"fp64"``/``"fp32"``); defaults
        to fp32 when both inputs are float32, else fp64.

    Returns
    -------
    ndarray in the target precision's dtype.
    """
    a = ensure_2d(a, "A")
    b = ensure_2d(b, "B")
    if np.iscomplexobj(a) or np.iscomplexobj(b):
        raise ValidationError("gemm emulation supports real matrices only")
    op_a = _apply_op(a, trans_a, "A")
    op_b = _apply_op(b, trans_b, "B")
    if op_a.shape[1] != op_b.shape[0]:
        raise ValidationError(
            f"inner dimensions do not match after transposition: "
            f"op(A) is {op_a.shape}, op(B) is {op_b.shape}"
        )

    if precision is None:
        both_fp32 = a.dtype == np.float32 and b.dtype == np.float32
        target = FP32 if both_fp32 else FP64
    else:
        target = get_format(precision)
    out_dtype = result_dtype(target)

    spec = get_method(method, target=target)
    product = np.asarray(spec(op_a, op_b), dtype=out_dtype)

    alpha = out_dtype.type(alpha)
    beta = out_dtype.type(beta)
    if beta != 0:
        if c is None:
            raise ValidationError("beta is non-zero but no C matrix was supplied")
        c = ensure_2d(c, "C")
        if c.shape != product.shape:
            raise ValidationError(
                f"C has shape {c.shape}, expected {product.shape}"
            )
        return (alpha * product + beta * np.asarray(c, dtype=out_dtype)).astype(out_dtype)
    if alpha != 1:
        return (alpha * product).astype(out_dtype)
    return product
