"""Precomputed residue operands: convert once, multiply many times.

The conversion phases of Algorithm 1 (lines 2–5: scaling, truncation and the
per-modulus INT8 residues) account for a large share of the emulated GEMM's
wall clock (see ``benchmarks/results/cpu_wallclock_phase_breakdown.txt``),
yet they depend only on *one* operand.  Workloads that multiply the same
matrix against many partners — LU trailing updates sweeping one ``L21``
across column strips, iterative solvers applying a fixed system matrix every
iteration, batches sharing a weight matrix — re-pay that cost on every call.

:class:`ResidueOperand` captures the conversion of one side once:

* the fast-mode power-of-two scale vector (``μ`` for the A side, ``ν`` for
  the B side),
* the per-modulus INT8 residue stack ``(N, rows, cols)``,
* the ``N``-independent pre-scale bounds of the scale formula
  (:class:`~repro.core.scaling.PrescaleBounds`) and a reference to the
  validated source matrix, so the *same* operand can be re-derived at any
  other moduli count without re-running the row/column-norm pass
  (:meth:`ResidueOperand.resolve_for` — the machinery behind adaptive
  moduli selection and progressive-precision solvers).

A prepared operand can then be passed to :func:`~repro.core.gemm.ozaki2_gemm`
(or :func:`~repro.runtime.batched.ozaki2_gemm_batched`) in place of the raw
matrix; the corresponding convert phase is skipped entirely and reported as
0 in :class:`~repro.core.gemm.PhaseTimes`.  Results are **bit-identical** to
the unprepared call: fast mode derives each side's scales from that side
alone, so caching reorders no floating-point operation.

Adaptive moduli selection (``num_moduli="auto"``)
-------------------------------------------------
Preparing under an auto configuration resolves the moduli count *at
preparation time* from the operand's own ``(k, max|X|)`` — the relative
error model of :mod:`repro.crt.adaptive` is magnitude-invariant, so this is
exactly the count every partner's multiplication selects under the same
``target_accuracy``; reuse therefore stays valid with no partner-dependent
re-selection.  A partner multiplying under a *different* target (or a fixed
count, e.g. the progressive-precision solvers escalating through a moduli
ladder) calls :meth:`ResidueOperand.resolve_for`, which re-derives the
operand at the requested count — bit-identical to a fresh preparation at
that count — and caches the result, so solvers escalating through a ladder
pay each stage's conversion once.

Accurate mode is different — its scale determination couples the two sides
through the bound matrix ``C̄ = Ā·B̄`` (Section 4.2), so *residues* cannot
be fixed before the partner is known.  But everything per-side and
``N``-independent **can**: the pre-scales ``μ' = 2^(5−⌊log2 max_h|a_ih|⌋)``
and the rounded-up magnitude matrix ``Ā = ceil(diag(μ')·|A|)`` that feed
the bound product.  :class:`AccurateOperand` captures exactly that
(:func:`~repro.core.scaling.accurate_mode_prescale`): multiplications
against it skip the per-side half of the scale phase and are bit-identical
to the unprepared call, because the one-shot path is *implemented as* the
same two-phase split.  The coupled half — the ``C̄`` product, truncation
and residues — still runs per partner; :class:`ResidueOperand` (fast mode)
and :class:`AccurateOperand` (accurate mode) share the
:class:`PreparedOperand` interface so entry points, the service-layer
operand cache and the solvers treat both uniformly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from ..config import ComputeMode, Ozaki2Config
from ..crt.adaptive import select_num_moduli
from ..crt.constants import CRTConstantTable, build_constant_table
from ..errors import ConfigurationError
from ..utils.validation import check_operand
from .conversion import residue_slices, truncate_scaled
from .scaling import (
    AccuratePrescale,
    PrescaleBounds,
    accurate_mode_prescale,
    fast_mode_prescale,
    scale_exponent_budget,
    scale_from_prescale,
)

__all__ = [
    "PreparedOperand",
    "ResidueOperand",
    "AccurateOperand",
    "matrix_fingerprint",
    "prepare_a",
    "prepare_b",
]

#: Maximum number of re-derived moduli counts a prepared operand keeps
#: alive at once (:meth:`ResidueOperand.resolve_for`).  The progressive
#: solvers escalate through 3–4 ladder stages, so four cached counts keep
#: every ladder hot while bounding the residue-stack memory a long-lived
#: operand can accumulate to ~4x one stack (previously unbounded: one
#: stack per distinct count ever requested).
_RESOLVE_CACHE_ENTRIES = 4


def matrix_fingerprint(x: np.ndarray) -> str:
    """Content fingerprint of a matrix: 32 hex digits over its logical value.

    Two arrays fingerprint equal **iff** they hold the same dtype, shape and
    element values — regardless of memory layout.  The hash runs over the
    row-major (C-order) *logical* element sequence (``ndarray.tobytes`` with
    its default C order walks the array through its strides), never over the
    raw buffer, so a transposed view ``A.T``, a sliced view ``A[::2, ::2]``
    or a Fortran-ordered copy fingerprints identically to its contiguous
    ``np.ascontiguousarray`` copy.  Hashing the buffer instead would split
    those — the same logical operand would miss the prepared-operand cache
    (wasted conversions) or, worse, two different logical matrices sharing a
    buffer region could collide.

    The digest (BLAKE2b-128) is salted with dtype and shape, so a
    ``(2, 8)`` and an ``(8, 2)`` matrix with equal buffers differ, as do
    float32/float64 views of the same bits.  This is the identity the
    service layer keys its operand cache and wire protocol on
    (:mod:`repro.service`): clients send the fingerprint in place of the
    payload once the server has acknowledged it.
    """
    x = np.asarray(x)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(x.dtype.str.encode("ascii"))
    digest.update(repr(tuple(x.shape)).encode("ascii"))
    digest.update(x.tobytes(order="C"))
    return digest.hexdigest()

#: Why a prepared operand cannot serve a multiplication in the other mode.
#: Fast residues are truncated under per-side Cauchy–Schwarz scales;
#: accurate preparation caches the pre-scales of the coupled bound-product
#: construction — the two are different arithmetic, never interchangeable.
_MODE_MISMATCH = (
    "fast and accurate mode use different scale constructions (per-side "
    "Cauchy-Schwarz vs. the coupled bound matrix C-bar = A-bar * B-bar of "
    "Section 4.2), so an operand prepared in one mode cannot serve a "
    "multiplication in the other; prepare the operand under a "
    "configuration with the matching mode"
)


class PreparedOperand:
    """Common interface of prepared one-side operands (fast or accurate).

    Entry points accept either concrete class wherever a prepared side is
    allowed; ``isinstance(x, PreparedOperand)`` is the dispatch test.  The
    concrete classes are :class:`ResidueOperand` (fast mode: scale vector +
    INT8 residue stack, partner-independent) and :class:`AccurateOperand`
    (accurate mode: the ``N``-independent pre-scale half of the coupled
    scale construction).  Subclasses provide ``side``, ``config``,
    ``source``, ``shape``, ``num_moduli``, ``max_abs``, ``nbytes``,
    ``convert_seconds``, ``require_compatible`` and ``resolve_for``.
    """

    side: str
    source: Optional[np.ndarray]

    @property
    def shape(self) -> Tuple[int, ...]:
        raise NotImplementedError

    @property
    def inner_dim(self) -> int:
        """The GEMM inner dimension ``k`` this operand contributes."""
        return int(self.shape[1] if self.side == "A" else self.shape[0])

    @property
    def phase_key(self) -> str:
        """The :class:`~repro.core.gemm.PhaseTimes` key this operand feeds."""
        return "convert_A" if self.side == "A" else "convert_B"

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the *source* matrix (see
        :func:`matrix_fingerprint`); requires a retained source."""
        if self.source is None:
            raise ConfigurationError(
                f"this hand-constructed {self.side}-side operand retains no "
                "source matrix, so it has no content fingerprint"
            )
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            cached = matrix_fingerprint(self.source)
            object.__setattr__(self, "_fingerprint", cached)
        return cached


@dataclasses.dataclass(frozen=True)
class ResidueOperand(PreparedOperand):
    """One GEMM side converted once, reusable against many partners.

    Attributes
    ----------
    side:
        ``"A"`` (left operand, per-row scales) or ``"B"`` (right operand,
        per-column scales).
    scale:
        The fast-mode power-of-two scale vector actually applied (``μ`` for
        the A side, ``ν`` for the B side).
    slices:
        INT8 residue stack of shape ``(N, rows, cols)`` — lines 4–5 of
        Algorithm 1 for this operand.
    config:
        The (always concrete) configuration the operand was prepared
        under; preparing with ``num_moduli="auto"`` stores the resolved
        configuration at the selected count.  Multiplications must use a
        configuration with the same precision, moduli count, mode and
        residue kernel (runtime knobs — ``parallelism``,
        ``memory_budget_mb``, ``block_k``, ``validate``, ``fused_kernels``,
        ``gemv_fast_path`` — may differ freely; they do not affect the
        residues).  A different moduli count is reachable through
        :meth:`resolve_for` instead of re-preparation.
    convert_seconds:
        One-time wall-clock cost of the preparation (scale + truncate +
        residues); the amortisation baseline reported by
        :func:`repro.harness.prepared_reuse_sweep`.
    prescale:
        Cached ``N``-independent scale inputs
        (:class:`~repro.core.scaling.PrescaleBounds`), or ``None`` for
        hand-constructed operands (which then cannot :meth:`resolve_for`).
    source:
        Reference to the validated float64 source matrix (not a copy — the
        operand keeps the caller's array alive; mutating it invalidates
        future :meth:`resolve_for` derivations, exactly as mutating the
        matrix between two plain GEMM calls would change their results).
    """

    side: str
    scale: np.ndarray
    slices: np.ndarray
    config: Ozaki2Config
    convert_seconds: float = 0.0
    prescale: Optional[PrescaleBounds] = None
    source: Optional[np.ndarray] = None
    _resolved_cache: "OrderedDict[int, ResidueOperand]" = dataclasses.field(
        default_factory=OrderedDict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.side not in ("A", "B"):
            raise ConfigurationError(
                f"ResidueOperand side must be 'A' or 'B', got {self.side!r}"
            )
        if self.config.moduli_is_auto:
            raise ConfigurationError(
                "ResidueOperand.config must be concrete; preparation resolves "
                "auto configurations before constructing the operand"
            )
        # Seed the (shared) derivation cache with this operand's own count,
        # so resolving back to it from a derived operand is a lookup, not a
        # second conversion.
        self._resolved_cache.setdefault(self.num_moduli, self)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape ``(rows, cols)`` of the underlying matrix."""
        return tuple(self.slices.shape[1:])

    @property
    def num_moduli(self) -> int:
        """Number of residue slices ``N``."""
        return int(self.slices.shape[0])

    @property
    def max_abs(self) -> Optional[float]:
        """``max|X|`` of the source matrix (None without cached prescale).

        This is the scan auto-N selection feeds on — already performed by
        the preparation's scaling pass, so selection against a prepared
        operand costs nothing.
        """
        return None if self.prescale is None else self.prescale.global_max_abs

    @property
    def nbytes(self) -> int:
        """Resident bytes of this operand (residues + scales + kept source).

        The figure the operand cache's byte budget accounts in
        (:class:`repro.service.cache.OperandCache`); derivations cached by
        :meth:`resolve_for` are *not* included — the cache bounds what it
        inserted, and derived operands share the source reference.
        """
        total = int(self.slices.nbytes) + int(self.scale.nbytes)
        if self.source is not None:
            total += int(self.source.nbytes)
        return total

    def require_compatible(self, config: Ozaki2Config) -> None:
        """Raise :class:`ConfigurationError` unless ``config`` can reuse this.

        The cached scale and residues are a function of the preparing
        configuration's precision (constant-table bit width), moduli count,
        mode and residue kernel; a multiplication under a configuration that
        differs in any of those would silently change the result, so it is
        rejected instead.  An **auto** ``config`` skips the moduli-count
        comparison: the entry points resolve the selection and re-derive
        the operand (:meth:`resolve_for`) before executing, so the count is
        checked on the resolved pair.
        """
        if config.mode is not ComputeMode.FAST:
            raise ConfigurationError(
                f"prepared operand ({self.side} side) carries fast-mode "
                f"residues but the multiplication requests "
                f"{config.mode.value!r} mode: {_MODE_MISMATCH}"
            )
        checks = [
            ("precision", self.config.precision.name, config.precision.name),
            ("residue_kernel", self.config.residue_kernel.value,
             config.residue_kernel.value),
        ]
        if not config.moduli_is_auto:
            checks.insert(1, ("num_moduli", self.config.num_moduli, config.num_moduli))
        mismatches = [
            f"{name}: prepared with {ours!r}, multiplication requests {theirs!r}"
            for name, ours, theirs in checks
            if ours != theirs
        ]
        if mismatches:
            raise ConfigurationError(
                "prepared operand is incompatible with this configuration — "
                + "; ".join(mismatches)
            )

    def resolve_for(self, num_moduli: int) -> "ResidueOperand":
        """Return this operand re-derived at another moduli count.

        The derived operand is **bit-identical to a fresh preparation** of
        the source matrix at the requested count: the scale vector is
        finalised from the cached pre-scale bounds (the exact arithmetic of
        :func:`~repro.core.scaling.fast_mode_scale_a` — see
        :func:`~repro.core.scaling.scale_from_prescale`) and the truncation
        + residue passes rerun against the stored source.  Derivations are
        cached on the operand — LRU-bounded to the
        :data:`_RESOLVE_CACHE_ENTRIES` most recently used counts, so a
        solver escalating through a moduli ladder pays each stage's
        conversion once while a long-lived operand cycling through many
        counts cannot accumulate unbounded residue stacks.  An evicted
        count is simply re-derived on the next request (bit-identical; the
        cache is an amortisation, never an identity).  Works in both
        directions (narrowing *and* widening).
        """
        num_moduli = int(num_moduli)
        if num_moduli == self.num_moduli:
            return self
        cached = self._resolved_cache.get(num_moduli)
        if cached is not None:
            self._resolved_cache.move_to_end(num_moduli)
            return cached
        if self.prescale is None or self.source is None:
            raise ConfigurationError(
                f"this {self.side}-side operand was prepared with "
                f"num_moduli={self.num_moduli} and carries no cached "
                "pre-scale bounds/source, so it cannot be re-derived at "
                f"num_moduli={num_moduli}; prepare it again with the "
                "requested configuration"
            )
        config = self.config.resolved(num_moduli)
        table = build_constant_table(
            num_moduli, 64 if config.is_dgemm else 32
        )
        start = time.perf_counter()
        scale = scale_from_prescale(
            self.prescale, scale_exponent_budget(table, "fast")
        )
        x_prime = truncate_scaled(
            self.source, scale, side="left" if self.side == "A" else "right"
        )
        slices = residue_slices(
            x_prime, table, config.residue_kernel, single_pass=config.fused_kernels
        )
        derived = ResidueOperand(
            side=self.side,
            scale=scale,
            slices=slices,
            config=config,
            convert_seconds=time.perf_counter() - start,
            prescale=self.prescale,
            source=self.source,
            _resolved_cache=self._resolved_cache,
        )
        self._resolved_cache[num_moduli] = derived
        while len(self._resolved_cache) > _RESOLVE_CACHE_ENTRIES:
            self._resolved_cache.popitem(last=False)
        return derived


@dataclasses.dataclass(frozen=True)
class AccurateOperand(PreparedOperand):
    """One GEMM side's ``N``-independent accurate-mode preparation.

    Accurate mode finalises its scales from the coupled bound product
    ``C̄ = Ā·B̄``, so — unlike :class:`ResidueOperand` — the truncated
    residues cannot be cached before the partner is known.  What *is*
    partner- and ``N``-independent is each side's pre-scale half
    (:class:`~repro.core.scaling.AccuratePrescale`): the ``μ'``/``ν'``
    vectors and the rounded-up magnitude matrix that feeds the bound
    product.  Multiplying against an :class:`AccurateOperand` therefore
    skips the per-side magnitude scan and round-up of the scale phase (the
    ``C̄`` product and the conversion still run per partner) and is
    **bit-identical** to passing the raw matrix: the one-shot path is
    implemented as the same two-phase split
    (:func:`~repro.core.scaling.accurate_scales_from_prescale`).

    Attributes
    ----------
    side:
        ``"A"`` (per-row pre-scales) or ``"B"`` (per-column).
    prescale:
        The cached :class:`~repro.core.scaling.AccuratePrescale`.
    config:
        The (always concrete) accurate-mode configuration prepared under;
        ``num_moduli="auto"`` resolves at preparation time exactly as the
        fast-mode preparation does.
    source:
        The validated float64 source matrix (required — truncation and
        residues run from it on every multiplication).
    convert_seconds:
        One-time wall-clock cost of the preparation.
    """

    side: str
    prescale: AccuratePrescale
    config: Ozaki2Config
    source: np.ndarray
    convert_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.side not in ("A", "B"):
            raise ConfigurationError(
                f"AccurateOperand side must be 'A' or 'B', got {self.side!r}"
            )
        if self.config.mode is not ComputeMode.ACCURATE:
            raise ConfigurationError(
                "AccurateOperand.config must be an accurate-mode "
                f"configuration, got mode {self.config.mode.value!r}"
            )
        if self.config.moduli_is_auto:
            raise ConfigurationError(
                "AccurateOperand.config must be concrete; preparation "
                "resolves auto configurations before constructing the operand"
            )

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape ``(rows, cols)`` of the underlying matrix."""
        return tuple(self.source.shape)

    @property
    def num_moduli(self) -> int:
        """The moduli count the operand was prepared (or resolved) at."""
        return int(self.config.num_moduli)

    @property
    def max_abs(self) -> float:
        """``max|X|`` of the source matrix (from the preparation's scan)."""
        return self.prescale.global_max_abs

    @property
    def nbytes(self) -> int:
        """Resident bytes (pre-scale arrays + kept source); the figure the
        operand cache's byte budget accounts in."""
        total = int(self.prescale.magnitude.nbytes)
        total += int(self.prescale.scale_prime.nbytes)
        total += int(self.prescale.max_abs.nbytes)
        total += int(self.source.nbytes)
        return total

    def require_compatible(self, config: Ozaki2Config) -> None:
        """Raise :class:`ConfigurationError` unless ``config`` can reuse this.

        Mirrors :meth:`ResidueOperand.require_compatible`: mode, precision,
        residue kernel and (for concrete configurations) moduli count must
        match; runtime knobs may differ freely.
        """
        if config.mode is not ComputeMode.ACCURATE:
            raise ConfigurationError(
                f"prepared operand ({self.side} side) carries accurate-mode "
                f"pre-scales but the multiplication requests "
                f"{config.mode.value!r} mode: {_MODE_MISMATCH}"
            )
        checks = [
            ("precision", self.config.precision.name, config.precision.name),
            ("residue_kernel", self.config.residue_kernel.value,
             config.residue_kernel.value),
        ]
        if not config.moduli_is_auto:
            checks.insert(1, ("num_moduli", self.config.num_moduli, config.num_moduli))
        mismatches = [
            f"{name}: prepared with {ours!r}, multiplication requests {theirs!r}"
            for name, ours, theirs in checks
            if ours != theirs
        ]
        if mismatches:
            raise ConfigurationError(
                "prepared operand is incompatible with this configuration — "
                + "; ".join(mismatches)
            )

    def resolve_for(self, num_moduli: int) -> "AccurateOperand":
        """Return this operand re-targeted at another moduli count.

        Nothing cached here depends on ``N`` (the pre-scales are
        ``N``-independent by construction), so re-targeting is a
        configuration swap, not a re-derivation — trivially bit-identical
        to a fresh preparation at the requested count.
        """
        num_moduli = int(num_moduli)
        if num_moduli == self.num_moduli:
            return self
        return dataclasses.replace(self, config=self.config.resolved(num_moduli))


def _prepare(
    x: np.ndarray,
    side: str,
    config: Optional[Ozaki2Config],
    constant_table: Optional[CRTConstantTable],
) -> "ResidueOperand | AccurateOperand":
    config = config or Ozaki2Config()
    if config.moduli_is_auto and constant_table is not None:
        raise ConfigurationError(
            "num_moduli='auto' selects the count (and with it the moduli "
            "prefix) per call from the default table, so a caller-supplied "
            "constant_table cannot be honoured; pass a fixed num_moduli to "
            "use a custom table"
        )
    if config.validate:
        x = check_operand(x, side, dtype=np.float64)
    else:
        x = np.asarray(x, dtype=np.float64)
    if config.mode is ComputeMode.ACCURATE:
        return _prepare_accurate(x, side, config)

    start = time.perf_counter()
    prescale = fast_mode_prescale(x, axis=1 if side == "A" else 0)
    if config.moduli_is_auto:
        # Resolve the selection from the operand's own max-abs scan (just
        # performed by the prescale pass).  The relative error model is
        # magnitude-invariant, so the partner's magnitudes cannot change the
        # selected count — this is the count every same-target
        # multiplication will request.
        inner = x.shape[1] if side == "A" else x.shape[0]
        selection = select_num_moduli(
            inner,
            prescale.global_max_abs,
            prescale.global_max_abs,
            64 if config.is_dgemm else 32,
            target=config.target_accuracy,
            mode=config.mode.value,
            model=config.selection_model,
        )
        config = config.resolved(selection.num_moduli)
        table = build_constant_table(
            config.num_moduli, 64 if config.is_dgemm else 32
        )
    else:
        table = constant_table or build_constant_table(
            config.num_moduli, 64 if config.is_dgemm else 32
        )
    scale = scale_from_prescale(prescale, scale_exponent_budget(table, "fast"))
    x_prime = truncate_scaled(x, scale, side="left" if side == "A" else "right")
    slices = residue_slices(
        x_prime, table, config.residue_kernel, single_pass=config.fused_kernels
    )
    elapsed = time.perf_counter() - start

    return ResidueOperand(
        side=side,
        scale=scale,
        slices=slices,
        config=config,
        convert_seconds=elapsed,
        prescale=prescale,
        source=x,
    )


def _prepare_accurate(
    x: np.ndarray, side: str, config: Ozaki2Config
) -> AccurateOperand:
    """Accurate-mode preparation: cache the ``N``-independent pre-scale half."""
    start = time.perf_counter()
    prescale = accurate_mode_prescale(x, axis=1 if side == "A" else 0)
    if config.moduli_is_auto:
        # Same resolution as the fast path: the relative model is
        # magnitude-invariant, so the operand's own scan decides the count
        # every same-target multiplication will request.
        inner = x.shape[1] if side == "A" else x.shape[0]
        selection = select_num_moduli(
            inner,
            prescale.global_max_abs,
            prescale.global_max_abs,
            64 if config.is_dgemm else 32,
            target=config.target_accuracy,
            mode=config.mode.value,
            model=config.selection_model,
        )
        config = config.resolved(selection.num_moduli)
    elapsed = time.perf_counter() - start
    return AccurateOperand(
        side=side,
        prescale=prescale,
        config=config,
        source=x,
        convert_seconds=elapsed,
    )


def prepare_a(
    a: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    constant_table: Optional[CRTConstantTable] = None,
) -> "ResidueOperand | AccurateOperand":
    """Prepare the left operand for repeated multiplication.

    Fast mode returns a :class:`ResidueOperand` (cached ``μ`` and the
    residues of ``A'``; the ``convert_A`` phase is skipped entirely on
    reuse); accurate mode returns an :class:`AccurateOperand` (cached
    pre-scale half of the coupled scale construction; the per-side scan of
    the scale phase is skipped).  Either can be passed to
    :func:`~repro.core.gemm.ozaki2_gemm` in place of ``a`` any number of
    times, and every such call is bit-identical to the unprepared call.
    Under ``num_moduli="auto"`` the moduli count is resolved here, from the
    operand's own magnitudes (see the module docstring).
    """
    return _prepare(a, "A", config, constant_table)


def prepare_b(
    b: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    constant_table: Optional[CRTConstantTable] = None,
) -> "ResidueOperand | AccurateOperand":
    """Prepare the right operand; see :func:`prepare_a`."""
    return _prepare(b, "B", config, constant_table)
