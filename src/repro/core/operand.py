"""Precomputed residue operands: convert once, multiply many times.

The conversion phases of Algorithm 1 (lines 2–5: scaling, truncation and the
per-modulus INT8 residues) account for a large share of the emulated GEMM's
wall clock (see ``benchmarks/results/cpu_wallclock_phase_breakdown.txt``),
yet they depend only on *one* operand.  Workloads that multiply the same
matrix against many partners — LU trailing updates sweeping one ``L21``
across column strips, iterative solvers applying a fixed system matrix every
iteration, batches sharing a weight matrix — re-pay that cost on every call.

:class:`ResidueOperand` captures the conversion of one side once:

* the fast-mode power-of-two scale vector (``μ`` for the A side, ``ν`` for
  the B side),
* the per-modulus INT8 residue stack ``(N, rows, cols)``.

A prepared operand can then be passed to :func:`~repro.core.gemm.ozaki2_gemm`
(or :func:`~repro.runtime.batched.ozaki2_gemm_batched`) in place of the raw
matrix; the corresponding convert phase is skipped entirely and reported as
0 in :class:`~repro.core.gemm.PhaseTimes`.  Results are **bit-identical** to
the unprepared call: fast mode derives each side's scales from that side
alone, so caching reorders no floating-point operation.

Accurate mode is different — its scale determination couples the two sides
through the bound matrix ``C̄ = Ā·B̄`` (Section 4.2), so residues cannot be
fixed before the partner is known.  Preparation is therefore restricted to
``ComputeMode.FAST`` and raises :class:`~repro.errors.ConfigurationError`
otherwise (see :meth:`ResidueOperand.require_compatible`).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

import numpy as np

from ..config import ComputeMode, Ozaki2Config
from ..crt.constants import CRTConstantTable, build_constant_table
from ..errors import ConfigurationError
from ..utils.validation import check_operand
from .conversion import residue_slices, truncate_scaled
from .scaling import fast_mode_scale_a, fast_mode_scale_b

__all__ = ["ResidueOperand", "prepare_a", "prepare_b"]

#: Human-readable phrasing of why accurate mode cannot use prepared operands.
_ACCURATE_RESTRICTION = (
    "accurate-mode scale determination couples the two sides (the bound "
    "matrix C-bar = A-bar * B-bar of Section 4.2 depends on both operands), "
    "so residues cannot be fixed before the partner is known; use "
    "ComputeMode.FAST, or pass raw matrices in accurate mode"
)


@dataclasses.dataclass(frozen=True)
class ResidueOperand:
    """One GEMM side converted once, reusable against many partners.

    Attributes
    ----------
    side:
        ``"A"`` (left operand, per-row scales) or ``"B"`` (right operand,
        per-column scales).
    scale:
        The fast-mode power-of-two scale vector actually applied (``μ`` for
        the A side, ``ν`` for the B side).
    slices:
        INT8 residue stack of shape ``(N, rows, cols)`` — lines 4–5 of
        Algorithm 1 for this operand.
    config:
        The configuration the operand was prepared under.  Multiplications
        must use a configuration with the same precision, moduli count,
        mode and residue kernel (runtime knobs — ``parallelism``,
        ``memory_budget_mb``, ``block_k``, ``validate``, ``fused_kernels``,
        ``gemv_fast_path`` — may differ freely; they do not affect the
        residues).
    convert_seconds:
        One-time wall-clock cost of the preparation (scale + truncate +
        residues); the amortisation baseline reported by
        :func:`repro.harness.prepared_reuse_sweep`.
    """

    side: str
    scale: np.ndarray
    slices: np.ndarray
    config: Ozaki2Config
    convert_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.side not in ("A", "B"):
            raise ConfigurationError(
                f"ResidueOperand side must be 'A' or 'B', got {self.side!r}"
            )

    @property
    def shape(self) -> tuple:
        """Shape ``(rows, cols)`` of the underlying matrix."""
        return tuple(self.slices.shape[1:])

    @property
    def num_moduli(self) -> int:
        """Number of residue slices ``N``."""
        return int(self.slices.shape[0])

    @property
    def inner_dim(self) -> int:
        """The GEMM inner dimension ``k`` this operand contributes."""
        return int(self.shape[1] if self.side == "A" else self.shape[0])

    @property
    def phase_key(self) -> str:
        """The :class:`~repro.core.gemm.PhaseTimes` key this operand skips."""
        return "convert_A" if self.side == "A" else "convert_B"

    def require_compatible(self, config: Ozaki2Config) -> None:
        """Raise :class:`ConfigurationError` unless ``config`` can reuse this.

        The cached scale and residues are a function of the preparing
        configuration's precision (constant-table bit width), moduli count,
        mode and residue kernel; a multiplication under a configuration that
        differs in any of those would silently change the result, so it is
        rejected instead.
        """
        if config.mode is not ComputeMode.FAST:
            raise ConfigurationError(
                f"prepared operand ({self.side} side) cannot be used in "
                f"{config.mode.value!r} mode: {_ACCURATE_RESTRICTION}"
            )
        mismatches = [
            f"{name}: prepared with {ours!r}, multiplication requests {theirs!r}"
            for name, ours, theirs in (
                ("precision", self.config.precision.name, config.precision.name),
                ("num_moduli", self.config.num_moduli, config.num_moduli),
                ("residue_kernel", self.config.residue_kernel.value,
                 config.residue_kernel.value),
            )
            if ours != theirs
        ]
        if mismatches:
            raise ConfigurationError(
                "prepared operand is incompatible with this configuration — "
                + "; ".join(mismatches)
            )


def _prepare(
    x: np.ndarray,
    side: str,
    config: Optional[Ozaki2Config],
    constant_table: Optional[CRTConstantTable],
) -> ResidueOperand:
    config = config or Ozaki2Config()
    if config.mode is not ComputeMode.FAST:
        raise ConfigurationError(
            f"cannot prepare the {side} side in {config.mode.value!r} mode: "
            + _ACCURATE_RESTRICTION
        )
    table = constant_table or build_constant_table(
        config.num_moduli, 64 if config.is_dgemm else 32
    )
    if config.validate:
        x = check_operand(x, side, dtype=np.float64)
    else:
        x = np.asarray(x, dtype=np.float64)

    start = time.perf_counter()
    if side == "A":
        scale = fast_mode_scale_a(x, table)
        x_prime = truncate_scaled(x, scale, side="left")
    else:
        scale = fast_mode_scale_b(x, table)
        x_prime = truncate_scaled(x, scale, side="right")
    slices = residue_slices(
        x_prime, table, config.residue_kernel, single_pass=config.fused_kernels
    )
    elapsed = time.perf_counter() - start

    return ResidueOperand(
        side=side,
        scale=scale,
        slices=slices,
        config=config,
        convert_seconds=elapsed,
    )


def prepare_a(
    a: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    constant_table: Optional[CRTConstantTable] = None,
) -> ResidueOperand:
    """Prepare the left operand: cache ``μ`` and the residues of ``A'``.

    The returned :class:`ResidueOperand` can be passed to
    :func:`~repro.core.gemm.ozaki2_gemm` in place of ``a`` any number of
    times; every such call skips the ``convert_A`` phase and is bit-identical
    to the unprepared call.  Fast mode only (see the module docstring).
    """
    return _prepare(a, "A", config, constant_table)


def prepare_b(
    b: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    constant_table: Optional[CRTConstantTable] = None,
) -> ResidueOperand:
    """Prepare the right operand: cache ``ν`` and the residues of ``B'``."""
    return _prepare(b, "B", config, constant_table)
