"""Ozaki scheme II: the paper's primary contribution.

The public entry points are:

* :func:`repro.core.gemm.ozaki2_gemm` — emulated GEMM with full control and
  diagnostics,
* :func:`repro.core.gemm.emulated_dgemm` / :func:`emulated_sgemm` —
  drop-in style helpers targeting FP64 / FP32,
* :class:`repro.config.Ozaki2Config` — the configuration object,
* :func:`repro.core.planner.choose_num_moduli` — pick ``N`` for a target
  accuracy.
"""

from __future__ import annotations

from .accumulation import accumulate_residue_products, reconstruct_crt, unscale
from .blocking import blocked_residue_products, k_block_ranges
from .conversion import residue_slices, truncate_scaled
from .gemm import (
    Ozaki2Result,
    PhaseTimes,
    emulated_dgemm,
    emulated_sgemm,
    ozaki2_gemm,
)
from .gemv import GemvResult, prepared_gemv
from .operand import ResidueOperand, prepare_a, prepare_b
from .planner import choose_num_moduli, estimate_retained_bits
from .scaling import (
    accurate_mode_scales,
    fast_mode_scale_a,
    fast_mode_scale_b,
    fast_mode_scales,
    scale_exponent_budget,
)

__all__ = [
    "ResidueOperand",
    "prepare_a",
    "prepare_b",
    "fast_mode_scale_a",
    "fast_mode_scale_b",
    "accumulate_residue_products",
    "reconstruct_crt",
    "unscale",
    "blocked_residue_products",
    "k_block_ranges",
    "residue_slices",
    "truncate_scaled",
    "Ozaki2Result",
    "PhaseTimes",
    "GemvResult",
    "prepared_gemv",
    "emulated_dgemm",
    "emulated_sgemm",
    "ozaki2_gemm",
    "choose_num_moduli",
    "estimate_retained_bits",
    "accurate_mode_scales",
    "fast_mode_scales",
    "scale_exponent_budget",
]
