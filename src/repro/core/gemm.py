"""Public emulated-GEMM API (Algorithm 1).

:func:`ozaki2_gemm` runs the full pipeline of Algorithm 1 on a pair of
matrices and returns either the result matrix or a
:class:`~repro.result.GemmResult` (historically ``Ozaki2Result``, kept as an
alias) with per-phase timings, operation counts and intermediate
diagnostics.  The convenience wrappers :func:`emulated_dgemm` /
:func:`emulated_sgemm` choose sensible defaults for FP64 / FP32 targets.

The result and phase-time classes live in :mod:`repro.result` (the unified
result hierarchy shared with the GEMV and solver routes) and are re-exported
here for backwards compatibility; see that module for the phase-key table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from ..config import ComputeMode, MAX_K_WITHOUT_BLOCKING, Ozaki2Config
from ..crt.adaptive import AdaptiveSelection, select_num_moduli
from ..crt.constants import CRTConstantTable, build_constant_table
from ..engines.base import MatrixEngine
from ..result import GemmResult, Ozaki2Result, PHASE_KEYS, PhaseTimes, _PhaseTimer
from ..types import result_dtype
from ..utils.validation import check_gemm_operands, check_operand
from ..errors import ConfigurationError, ValidationError

if TYPE_CHECKING:  # runtime imports core; keep the scheduler type import one-way
    from ..runtime.scheduler import Scheduler
from .accumulation import unscale
from .operand import AccurateOperand, PreparedOperand, ResidueOperand
from .scaling import (
    accurate_mode_prescale,
    accurate_scales_from_prescale,
    fast_mode_scale_a,
    fast_mode_scale_b,
)

__all__ = [
    "PHASE_KEYS",
    "PhaseTimes",
    "GemmResult",
    "Ozaki2Result",
    "ozaki2_gemm",
    "emulated_dgemm",
    "emulated_sgemm",
]

#: Why num_moduli="auto" rejects a caller-supplied constant table.
_AUTO_TABLE_RESTRICTION = (
    "num_moduli='auto' selects the count (and with it the moduli prefix) "
    "per call from the default table, so a caller-supplied constant_table "
    "cannot be honoured; pass a fixed num_moduli to use a custom table"
)


def _operand_max_abs(raw: np.ndarray, prep: Optional[PreparedOperand]) -> float:
    """``max|X|`` of one GEMM side, prepared or raw.

    Prepared operands carry the value from their preparation's scaling scan
    (free); raw sides pay one ``max(|X|)`` pass — the same scan the scaling
    phase performs, a negligible fraction of the conversion it feeds.
    """
    if prep is not None:
        if prep.max_abs is None:
            raise ValidationError(
                "auto moduli selection needs the operand's max-abs, but this "
                "hand-constructed ResidueOperand carries no cached prescale "
                "bounds; prepare it with repro.core.operand.prepare_a/"
                "prepare_b or pass a fixed num_moduli"
            )
        return prep.max_abs
    return float(np.max(np.abs(raw))) if raw.size else 0.0


def _resolve_auto_moduli(
    a: np.ndarray,
    b: np.ndarray,
    a_prep: Optional[PreparedOperand],
    b_prep: Optional[PreparedOperand],
    k: int,
    config: Ozaki2Config,
) -> "tuple[Ozaki2Config, Optional[PreparedOperand], Optional[PreparedOperand], AdaptiveSelection]":
    """Resolve ``num_moduli="auto"`` for one call.

    Returns ``(config, a_prep, b_prep, selection)``: a concrete
    configuration at the selected count, prepared sides re-derived at that
    count (:meth:`~repro.core.operand.ResidueOperand.resolve_for`, cached),
    and the :class:`~repro.crt.adaptive.AdaptiveSelection` diagnostic.  The
    resolved call is bit-identical to a fixed-``num_moduli`` call at the
    selected count — auto selection chooses the configuration, never the
    arithmetic.  ``config.selection_model`` picks between the rigorous
    bound and the calibrated model (which falls back to rigorous whenever
    its margin test fails; see :mod:`repro.crt.calibration`).
    """
    selection = select_num_moduli(
        k,
        _operand_max_abs(a, a_prep),
        _operand_max_abs(b, b_prep),
        64 if config.is_dgemm else 32,
        target=config.target_accuracy,
        mode=config.mode.value,
        model=config.selection_model,
    )
    config = config.resolved(selection.num_moduli)
    if a_prep is not None:
        a_prep = a_prep.resolve_for(config.num_moduli)
    if b_prep is not None:
        b_prep = b_prep.resolve_for(config.num_moduli)
    return config, a_prep, b_prep, selection


def _check_prepared_a(a_prep: PreparedOperand, config: Ozaki2Config) -> None:
    """Validate a prepared operand passed as the left operand.

    Shared by the GEMM route and the residue-GEMV fast path
    (:mod:`repro.core.gemv`), whose contract is exact error parity with
    this route — one helper keeps the invariant structural.
    """
    if a_prep.side != "A":
        raise ValidationError(
            "an operand prepared for the B side (per-column scales) "
            "was passed as the left operand; use prepare_a for A"
        )
    a_prep.require_compatible(config)


def _resolve_prepared_sides(
    a: np.ndarray,
    b: np.ndarray,
    a_prep: Optional[PreparedOperand],
    b_prep: Optional[PreparedOperand],
    config: Ozaki2Config,
) -> "tuple[np.ndarray, np.ndarray]":
    """Validate a GEMM call in which at least one side is prepared.

    Checks side orientation and configuration compatibility of the prepared
    side(s), applies the usual per-operand validation to the raw side (if
    any) and verifies the inner dimensions match.  Returns the coerced
    ``(a, b)`` pair (prepared entries are passed through unchanged).
    """
    if a_prep is not None:
        _check_prepared_a(a_prep, config)
    if b_prep is not None:
        if b_prep.side != "B":
            raise ValidationError(
                "an operand prepared for the A side (per-row scales) "
                "was passed as the right operand; use prepare_b for B"
            )
        b_prep.require_compatible(config)

    if a_prep is None:
        a = check_operand(a, "A") if config.validate else np.asarray(a, dtype=np.float64)
    if b_prep is None:
        b = check_operand(b, "B") if config.validate else np.asarray(b, dtype=np.float64)

    k_a = a_prep.inner_dim if a_prep is not None else a.shape[1]
    k_b = b_prep.inner_dim if b_prep is not None else b.shape[0]
    if k_a != k_b:
        shape_a = a_prep.shape if a_prep is not None else a.shape
        shape_b = b_prep.shape if b_prep is not None else b.shape
        raise ValidationError(
            f"inner dimensions do not match: A is {tuple(shape_a)}, "
            f"B is {tuple(shape_b)}"
        )
    return a, b


def ozaki2_gemm(
    a: "np.ndarray | PreparedOperand",
    b: "np.ndarray | PreparedOperand",
    config: Optional[Ozaki2Config] = None,
    engine: Optional[MatrixEngine] = None,
    return_details: bool = False,
    constant_table: Optional[CRTConstantTable] = None,
    scheduler: "Scheduler | None" = None,
) -> "np.ndarray | GemmResult":
    """Emulated matrix product ``A @ B`` via Ozaki scheme II (Algorithm 1).

    Parameters
    ----------
    a, b:
        Input matrices with a matching inner dimension.  Either side may be
        a precomputed operand from :func:`~repro.core.operand.prepare_a` /
        :func:`~repro.core.operand.prepare_b`: a fast-mode
        :class:`~repro.core.operand.ResidueOperand` (the corresponding
        convert phase is skipped entirely — reported as 0 in
        :class:`PhaseTimes`) or an accurate-mode
        :class:`~repro.core.operand.AccurateOperand` (the per-side half of
        the scale phase is skipped; the coupled bound product and the
        conversion still run per partner).  Either way the result is
        bit-identical to the unprepared call.  The operand's mode must
        match ``config.mode``.
    config:
        :class:`~repro.config.Ozaki2Config`; defaults to DGEMM emulation
        with 15 moduli in fast mode.  ``config.parallelism`` fans the
        residue GEMMs out over worker threads and ``config.memory_budget_mb``
        tiles the output (both via :mod:`repro.runtime`); results are
        bit-identical for every setting.
    engine:
        INT8 matrix engine to use; defaults to a fresh
        :class:`~repro.engines.Int8MatrixEngine`.
    return_details:
        When True, return an :class:`Ozaki2Result` instead of just the
        product matrix.
    constant_table:
        Precomputed constant table (otherwise built/cached from the config).
    scheduler:
        Optional :class:`~repro.runtime.scheduler.Scheduler` to reuse (e.g.
        to keep one worker pool warm across many calls); by default one is
        created from ``config.parallelism`` and closed before returning.
        When given, it takes precedence over ``engine``.

    Returns
    -------
    ``C`` (ndarray) or :class:`Ozaki2Result`.
    """
    # Imported lazily: repro.runtime imports this module for Ozaki2Result.
    from ..runtime.plan import plan_for_config
    from ..runtime.scheduler import Scheduler, execute_plan

    config = config or Ozaki2Config()
    out_dtype = result_dtype(config.precision)

    a_prep = a if isinstance(a, PreparedOperand) else None
    b_prep = b if isinstance(b, PreparedOperand) else None
    if a_prep is None and b_prep is None:
        if config.validate:
            a, b = check_gemm_operands(a, b, dtype=np.float64)
        else:
            a = np.asarray(a, dtype=np.float64)
            b = np.asarray(b, dtype=np.float64)
    else:
        a, b = _resolve_prepared_sides(a, b, a_prep, b_prep, config)

    m, k = a_prep.shape if a_prep is not None else a.shape
    n = (b_prep.shape if b_prep is not None else b.shape)[1]

    # Accuracy-driven moduli selection: resolve "auto" to a concrete count
    # (and re-derive prepared sides at it) before any table or plan exists.
    # A caller-supplied table cannot be honoured under auto — the selection
    # model is defined for the default moduli prefix — so it is rejected
    # rather than silently replaced.
    selection = None
    if config.moduli_is_auto:
        if constant_table is not None:
            raise ConfigurationError(_AUTO_TABLE_RESTRICTION)
        config, a_prep, b_prep, selection = _resolve_auto_moduli(
            a, b, a_prep, b_prep, k, config
        )
    table = constant_table or build_constant_table(
        config.num_moduli, 64 if config.is_dgemm else 32
    )

    # Raises OverflowRiskError when k > 2**17 with blocking disabled; the
    # number of k-blocks reported below comes from the ranges actually used.
    # The threshold is read from this module's global so tests can shrink it.
    plan = plan_for_config(m, k, n, config, max_block_k=MAX_K_WITHOUT_BLOCKING)

    own_scheduler = scheduler is None
    scheduler = scheduler or Scheduler(
        parallelism=plan.parallelism,
        engine=engine,
        executor=config.executor,
        max_pool_rebuilds=config.max_pool_rebuilds,
    )
    engine = scheduler.engine
    times = PhaseTimes()
    a_slices = b_slices = None

    try:
        # Line 1: scale vectors.  Fast mode derives each side's scales from
        # that side alone, so a prepared operand simply contributes its
        # cached vector; accurate mode finalises from the two sides'
        # pre-scales (cached on AccurateOperands, computed here otherwise)
        # through the coupled bound product.
        with _PhaseTimer(times, "scale"):
            if config.mode is ComputeMode.FAST:
                mu = a_prep.scale if a_prep is not None else fast_mode_scale_a(a, table)
                nu = b_prep.scale if b_prep is not None else fast_mode_scale_b(b, table)
            else:
                pa = (
                    a_prep.prescale
                    if isinstance(a_prep, AccurateOperand)
                    else accurate_mode_prescale(a, axis=1)
                )
                pb = (
                    b_prep.prescale
                    if isinstance(b_prep, AccurateOperand)
                    else accurate_mode_prescale(b, axis=0)
                )
                mu, nu, _ = accurate_scales_from_prescale(
                    pa, pb, table, engine, MAX_K_WITHOUT_BLOCKING
                )

        # Lines 2 and 4: A' and its residues (skipped when A carries a
        # fast-mode residue stack; an accurate prepared operand converts
        # from its retained source — the scales are partner-coupled).
        # Conversion routes through the scheduler so the process backend can
        # band the rows across workers (bit-identical to the inline path,
        # which serial/thread schedulers run unchanged).
        if isinstance(a_prep, ResidueOperand):
            a_slices = a_prep.slices
            times.add("convert_A", 0.0)
        else:
            a_src = a_prep.source if a_prep is not None else a
            with _PhaseTimer(times, "convert_A"):
                a_slices = scheduler.convert_residues(a_src, mu, "left", table, config)

        # Lines 3 and 5: B' and its residues (skipped when B is prepared).
        if isinstance(b_prep, ResidueOperand):
            b_slices = b_prep.slices
            times.add("convert_B", 0.0)
        else:
            b_src = b_prep.source if b_prep is not None else b
            with _PhaseTimer(times, "convert_B"):
                b_slices = scheduler.convert_residues(b_src, nu, "right", table, config)

        # Lines 6-11: the N INT8 GEMMs (fanned out over the scheduler's
        # workers, blocked over k and tiled over m/n per the plan) and the
        # CRT reconstruction.  Fills the matmul/accumulate/reconstruct
        # phases of ``times``.  The residue stacks come from our own
        # conversion (or a prepared operand), so they are trusted: the
        # fused engine path may skip its per-call validation sweeps.
        c_pp = execute_plan(
            scheduler, plan, a_slices, b_slices, table, config, times, trusted=True
        )
        # One emulated GEMM retired at this (possibly auto-selected) count.
        engine.counter.record_emulated(config.num_moduli)

        # Line 12: inverse scaling.
        with _PhaseTimer(times, "unscale"):
            c = unscale(c_pp, mu, nu, out_dtype=out_dtype)
    finally:
        if own_scheduler:
            scheduler.close()
        else:
            # Shared scheduler: free any shared-memory conversion outputs
            # now rather than at the owner's close (prepared-operand slices
            # are not scheduler-owned, so release is a no-op for them).
            scheduler.release(a_slices)
            scheduler.release(b_slices)

    if not return_details:
        return c
    return GemmResult(
        value=c,
        config=config,
        mu=mu,
        nu=nu,
        phase_times=times,
        ledger=engine.counter,
        num_k_blocks=plan.num_k_blocks,
        moduli_selection=selection,
        moduli_history=[config.num_moduli],
    )


def emulated_dgemm(
    a: np.ndarray,
    b: np.ndarray,
    num_moduli: int = 15,
    mode: "ComputeMode | str" = ComputeMode.FAST,
    **kwargs: Any,
) -> "np.ndarray | GemmResult":
    """Emulated DGEMM (FP64 target) — the paper's ``OS II-<mode>-<N>``.

    Accepts the same extra keyword arguments as :func:`ozaki2_gemm`
    (``engine``, ``return_details``, ...).
    """
    config = Ozaki2Config.for_dgemm(num_moduli=num_moduli, mode=mode)
    return ozaki2_gemm(a, b, config=config, **kwargs)


def emulated_sgemm(
    a: np.ndarray,
    b: np.ndarray,
    num_moduli: int = 8,
    mode: "ComputeMode | str" = ComputeMode.FAST,
    **kwargs: Any,
) -> "np.ndarray | GemmResult":
    """Emulated SGEMM (FP32 target) — the paper's ``OS II-<mode>-<N>``."""
    config = Ozaki2Config.for_sgemm(num_moduli=num_moduli, mode=mode)
    return ozaki2_gemm(a, b, config=config, **kwargs)
