"""Accumulation and CRT reconstruction (lines 7–12 of Algorithm 1).

The INT32 products ``C'_i = A'_i B'_i`` are first reduced to UINT8 residue
matrices ``U_i = mod(C'_i, p_i)``; the CRT reconstruction then becomes

.. math::

    C' = Σ_i w_i U_i, \\qquad C'' = C' - P\\,\\mathrm{round}(C'/P),

evaluated entirely in FP64 using the split weights ``w_i ≈ s_{i1} + s_{i2}``
of Section 4.1.  Because every ``s_{i1} U_i`` is an integer multiple of a
common power of two and their sum stays below 2^53 times that unit, the
first accumulation ``C'^{(1)} = Σ_i s_{i1} U_i`` is *error-free*; the second
accumulation ``C'^{(2)} = Σ_i s_{i2} U_i`` carries the low-order bits.  The
final combination uses FMA so the huge cancellation ``C'^{(1)} − P_1 Q`` is
performed without forming the product ``P_1 Q`` inexactly.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..crt.constants import CRTConstantTable
from ..crt.residues import uint8_residues
from ..utils.fma import fma

__all__ = ["accumulate_residue_products", "reconstruct_crt", "unscale"]


def accumulate_residue_products(
    c_stack: np.ndarray,
    table: CRTConstantTable,
    use_mulhi: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute ``C'^{(1)} = Σ s_i1 U_i`` and ``C'^{(2)} = Σ s_i2 U_i``.

    Parameters
    ----------
    c_stack:
        INT32 (or integer-valued) array of shape ``(N, m, n)`` holding the
        residue products ``C'_i``.
    table:
        Constant table providing moduli, split weights and reciprocals.
    use_mulhi:
        Use the ``__mulhi`` fast kernel for ``mod`` (Section 4.3) instead of
        the exact integer remainder.  Both yield identical ``U_i``.

    Returns
    -------
    (C1, C2):
        Two float64 ``(m, n)`` matrices.  ``C1`` is exact; ``C2`` holds the
        low-order correction (all zeros for SGEMM emulation, where
        ``s_i2 = 0``).
    """
    c_stack = np.asarray(c_stack)
    if c_stack.ndim != 3 or c_stack.shape[0] != table.num_moduli:
        raise ValueError(
            f"c_stack must have shape (N, m, n) with N={table.num_moduli}, "
            f"got {c_stack.shape}"
        )
    m, n = c_stack.shape[1:]
    c1 = np.zeros((m, n), dtype=np.float64)
    c2 = np.zeros((m, n), dtype=np.float64)
    need_c2 = bool(np.any(table.s2 != 0.0))
    for i, p in enumerate(table.moduli):
        pinv_prime = int(table.pinv_prime[i]) if use_mulhi else None
        u = uint8_residues(c_stack[i], p, pinv_prime).astype(np.float64)
        c1 += table.s1[i] * u
        if need_c2:
            c2 += table.s2[i] * u
    return c1, c2


def reconstruct_crt(
    c1: np.ndarray, c2: np.ndarray, table: CRTConstantTable
) -> np.ndarray:
    """Reconstruct ``C'' = rmod(C', P)`` from the two accumulations.

    Implements lines 10–11 of Algorithm 1::

        Q   = round(Pinv · C'^{(1)})
        C'' = ((C'^{(1)} − P1·Q) + C'^{(2)}) − P2·Q      (FMA form)

    ``Q`` is the integer multiple of ``P`` contained in ``C'``; subtracting
    it with the double-double ``P ≈ P1 + P2`` and FMA keeps the massive
    cancellation exact to FP64 accuracy.
    """
    q = np.rint(table.Pinv * c1)
    t = fma(np.full_like(q, -table.P1), q, c1)
    t = t + c2
    return fma(np.full_like(q, -table.P2), q, t)


def unscale(c_pp: np.ndarray, mu: np.ndarray, nu: np.ndarray, out_dtype=np.float64) -> np.ndarray:
    """Line 12 of Algorithm 1: ``C = diag(μ⁻¹)·C''·diag(ν⁻¹)``.

    The scales are powers of two, so the divisions are exact; they are
    implemented as multiplications by the exact reciprocals.
    """
    inv_mu = 1.0 / np.asarray(mu, dtype=np.float64)
    inv_nu = 1.0 / np.asarray(nu, dtype=np.float64)
    c = c_pp * inv_mu[:, None] * inv_nu[None, :]
    return np.asarray(c, dtype=out_dtype)
