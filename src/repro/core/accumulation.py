"""Accumulation and CRT reconstruction (lines 7–12 of Algorithm 1).

The INT32 products ``C'_i = A'_i B'_i`` are first reduced to UINT8 residue
matrices ``U_i = mod(C'_i, p_i)``; the CRT reconstruction then becomes

.. math::

    C' = Σ_i w_i U_i, \\qquad C'' = C' - P\\,\\mathrm{round}(C'/P),

evaluated entirely in FP64 using the split weights ``w_i ≈ s_{i1} + s_{i2}``
of Section 4.1.  Because every ``s_{i1} U_i`` is an integer multiple of a
common power of two and their sum stays below 2^53 times that unit, the
first accumulation ``C'^{(1)} = Σ_i s_{i1} U_i`` is *error-free*; the second
accumulation ``C'^{(2)} = Σ_i s_{i2} U_i`` carries the low-order bits.  The
final combination uses FMA so the huge cancellation ``C'^{(1)} − P_1 Q`` is
performed without forming the product ``P_1 Q`` inexactly.
"""

from __future__ import annotations

import functools
import threading
from typing import Optional, Tuple

import numpy as np

from ..crt.constants import CRTConstantTable
from ..crt.residues import uint8_residues, uint8_residues_stack
from ..utils.fma import fma

__all__ = ["accumulate_residue_products", "reconstruct_crt", "unscale"]


@functools.lru_cache(maxsize=None)
def _split_tail_terms(moduli: Tuple[int, ...], precision_bits: int) -> Tuple[bool, Tuple[int, ...]]:
    """Cached ``(need_c2, nonzero s2 indices)`` for one constant table.

    These depend only on the moduli prefix and the table bit width (the
    32-bit tables always report ``(False, ())`` — their weights are kept
    unsplit), yet were recomputed — an ``any`` plus a ``flatnonzero`` sweep
    over the split tails — on every GEMM/GEMV call.  Keyed like the
    constant-table cache itself, so auto-N runs hopping between moduli
    counts each hit their own entry.
    """
    from ..crt.constants import build_constant_table

    table = build_constant_table(len(moduli), precision_bits, moduli=moduli)
    nonzero = tuple(int(i) for i in np.flatnonzero(table.s2))
    return bool(nonzero), nonzero


#: Per-thread reusable float64 U-stack workspaces keyed on
#: ``(num_moduli, m, n)``.  The vectorised accumulation materialises the
#: whole float64 residue stack on every GEMM/GEMV call even though its
#: allocation depends only on the moduli count and the tile shape; solvers
#: and batched runs hit the same shape thousands of times, so the buffer is
#: recycled (thread-local: the accumulation runs on the calling thread, and
#: concurrent callers must not share a scratch stack).  Contents are fully
#: overwritten by :func:`repro.crt.residues.uint8_residues_stack` before
#: any read, and the buffer never escapes the call.
_WORKSPACE = threading.local()

#: Distinct shapes cached per thread before the pool is cleared (bounds the
#: resident scratch memory for workloads sweeping many problem sizes).
_WORKSPACE_MAX_SHAPES = 8


def _u_stack_workspace(shape: Tuple[int, ...]) -> np.ndarray:
    """Fetch (or allocate) this thread's float64 U-stack for ``shape``."""
    pool = getattr(_WORKSPACE, "pool", None)
    if pool is None:
        pool = _WORKSPACE.pool = {}
    buffer = pool.get(shape)
    if buffer is None:
        if len(pool) >= _WORKSPACE_MAX_SHAPES:
            pool.clear()
        buffer = pool[shape] = np.empty(shape, dtype=np.float64)
    return buffer


def accumulate_residue_products(
    c_stack: np.ndarray,
    table: CRTConstantTable,
    use_mulhi: bool = False,
    vectorized: bool = True,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Compute ``C'^{(1)} = Σ s_i1 U_i`` and ``C'^{(2)} = Σ s_i2 U_i``.

    Parameters
    ----------
    c_stack:
        INT32 (or integer-valued) array of shape ``(N, m, n)`` holding the
        residue products ``C'_i``.
    table:
        Constant table providing moduli, split weights and reciprocals.
    use_mulhi:
        Use the ``__mulhi`` fast kernel for ``mod`` (Section 4.3) instead of
        the exact integer remainder.  Both yield identical ``U_i``.
    vectorized:
        When True (default), materialise the whole float64 U-stack first
        (one scalar-divisor remainder per modulus, no UINT8/float64
        round-trips) and evaluate ``C1`` with a single
        :func:`numpy.tensordot` of the split weights against the U-stack.
        For the 64-bit tables ``C1`` is order-independent because the
        split-weight accumulation is *error-free* (every ``s_i1 U_i`` has at
        most ``β_i + 8 <= 53`` significant bits and every partial sum is an
        exact multiple of a common unit below 2^53 — Section 4.3), so any
        summation order gives the identical float64 result.  The 32-bit
        tables keep the full (unsplit) weights, whose accumulation carries
        rounding; there — and for the inexact ``C2`` terms — the fixed
        ascending-modulus order of the per-modulus loop is preserved so the
        result stays bit-identical with ``vectorized=False`` (kept as the
        pre-fusion comparator).

    Returns
    -------
    (C1, C2):
        ``C1`` is an exact float64 ``(m, n)`` matrix.  ``C2`` holds the
        low-order correction, or is ``None`` when every split-weight tail
        ``s_i2`` is zero (always the case for SGEMM emulation) — the dead
        all-zero accumulation is skipped instead of allocated.
    """
    c_stack = np.asarray(c_stack)
    if c_stack.ndim != 3 or c_stack.shape[0] != table.num_moduli:
        raise ValueError(
            f"c_stack must have shape (N, m, n) with N={table.num_moduli}, "
            f"got {c_stack.shape}"
        )
    need_c2, s2_nonzero = _split_tail_terms(table.moduli, table.precision_bits)
    if vectorized:
        # Materialise the whole float64 U-stack up front, into this
        # thread's cached workspace for the (moduli, tile) shape — the
        # buffer is fully overwritten before any read.  The residues lie
        # in [0, p) ⊂ [0, 255], so writing them straight into float64 makes
        # the UINT8 narrowing of the per-modulus path a bitwise no-op and
        # saves the widening pass.
        u = uint8_residues_stack(
            c_stack,
            table.moduli,
            table.pinv_prime if use_mulhi else None,
            out=_u_stack_workspace(c_stack.shape),
        )
        if table.precision_bits == 64:
            c1 = np.tensordot(table.s1, u.reshape(table.num_moduli, -1), axes=1)
            c1 = c1.reshape(c_stack.shape[1:])
        else:
            # Unsplit 32-bit weights: the sum is inexact, keep the loop order.
            c1 = np.zeros(c_stack.shape[1:], dtype=np.float64)
            for i in range(table.num_moduli):
                c1 += table.s1[i] * u[i]
        if not need_c2:
            return c1, None
        # Ordered accumulation of the inexact low-order terms; adding a term
        # with s2[i] == 0 is a bitwise no-op (all terms are >= 0), so only
        # the nonzero ones are visited.
        c2 = np.zeros(c_stack.shape[1:], dtype=np.float64)
        for i in s2_nonzero:
            c2 += table.s2[i] * u[i]
        return c1, c2

    m, n = c_stack.shape[1:]
    c1 = np.zeros((m, n), dtype=np.float64)
    c2 = np.zeros((m, n), dtype=np.float64) if need_c2 else None
    for i, p in enumerate(table.moduli):
        pinv_prime = int(table.pinv_prime[i]) if use_mulhi else None
        u = uint8_residues(c_stack[i], p, pinv_prime).astype(np.float64)
        c1 += table.s1[i] * u
        if need_c2:
            c2 += table.s2[i] * u
    return c1, c2


def reconstruct_crt(
    c1: np.ndarray, c2: Optional[np.ndarray], table: CRTConstantTable
) -> np.ndarray:
    """Reconstruct ``C'' = rmod(C', P)`` from the two accumulations.

    Implements lines 10–11 of Algorithm 1::

        Q   = round(Pinv · C'^{(1)})
        C'' = ((C'^{(1)} − P1·Q) + C'^{(2)}) − P2·Q      (FMA form)

    ``Q`` is the integer multiple of ``P`` contained in ``C'``; subtracting
    it with the double-double ``P ≈ P1 + P2`` and FMA keeps the massive
    cancellation exact to FP64 accuracy.  ``c2 = None`` (the sentinel for an
    all-zero second accumulation) skips the addition outright.  The scalar
    coefficients ``-P1`` / ``-P2`` broadcast through :func:`~repro.utils.
    fma.fma` directly — no full-size constant matrices are materialised.
    """
    q = np.rint(table.Pinv * c1)
    t = fma(-table.P1, q, c1)
    if c2 is not None:
        t = t + c2
    return fma(-table.P2, q, t)


def unscale(
    c_pp: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
    out_dtype: "np.dtype | type" = np.float64,
) -> np.ndarray:
    """Line 12 of Algorithm 1: ``C = diag(μ⁻¹)·C''·diag(ν⁻¹)``.

    The scales are powers of two, so the divisions are exact; they are
    implemented as multiplications by the exact reciprocals.
    """
    inv_mu = 1.0 / np.asarray(mu, dtype=np.float64)
    inv_nu = 1.0 / np.asarray(nu, dtype=np.float64)
    c = c_pp * inv_mu[:, None] * inv_nu[None, :]
    return np.asarray(c, dtype=out_dtype)
