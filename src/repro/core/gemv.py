"""Dedicated residue-GEMV path: emulated ``A @ x`` without the GEMM machinery.

The iterative solvers of :mod:`repro.apps.solvers` apply the *same* prepared
system matrix to a new vector every iteration.  Routing that ``n = 1``
product through :func:`~repro.core.gemm.ozaki2_gemm` pays the full GEMM
machinery per call — an :class:`~repro.runtime.plan.ExecutionPlan`, a
:class:`~repro.runtime.scheduler.Scheduler`, modulus-chunk task lists, m/n
tiling — and, worse, the stacked float64 BLAS product promotes the whole
``(N, m, k)`` INT8 residue stack to float64 on every iteration (8x the
stack's memory traffic for a product that performs only ``N·m·k`` MACs).

:func:`prepared_gemv` is the ``n = 1`` specialisation that skips all of it:

* the vector converts in a single vector-shaped pass
  (:func:`repro.crt.residues.residues_to_int8` on the 1-D ``x'``),
* the ``N`` residue GEMVs issue as **one** fused
  :meth:`~repro.engines.base.MatrixEngine.matvec_stack` engine call per
  k-block (the INT8 engine contracts the stack with an INT32-accumulating
  einsum — no float64 promotion),
* no plan, no scheduler, no tiling: the transient workspace is one
  ``(N, m)`` stack.

The result is **bit-identical** to the ``n = 1`` GEMM route for every
configuration, and the op ledger records exactly the same ``N`` residue
products — the fast path is an execution strategy, not a numerical change.
The GEMM route is kept as the verification comparator, selected by
``Ozaki2Config(gemv_fast_path=False)`` or ``repro solve --no-gemv-fast``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

import numpy as np

from ..config import ComputeMode, MAX_K_WITHOUT_BLOCKING, Ozaki2Config, ResidueKernel
from ..crt.constants import CRTConstantTable, build_constant_table
from ..engines.base import MatrixEngine, OpCounter
from ..engines.int8 import Int8MatrixEngine
from ..errors import ConfigurationError, OverflowRiskError, ValidationError
from ..result import PhaseTimes, Result, _PhaseTimer
from ..types import result_dtype
from ..utils.validation import check_operand
from .accumulation import accumulate_residue_products, reconstruct_crt, unscale
from .blocking import k_block_ranges
from .conversion import residue_slices, truncate_scaled
from .gemm import (
    _AUTO_TABLE_RESTRICTION,
    _check_prepared_a,
    _resolve_auto_moduli,
)
from .operand import AccurateOperand, PreparedOperand, ResidueOperand
from .scaling import (
    accurate_mode_prescale,
    accurate_scales_from_prescale,
    fast_mode_scale_a,
    fast_mode_scale_b,
)

__all__ = ["GemvResult", "prepared_gemv"]


@dataclasses.dataclass
class GemvResult(Result):
    """Full result of one emulated matrix–vector product.

    Attributes
    ----------
    value:
        The emulated product ``A @ x`` as a 1-D vector in the target
        precision's dtype (also reachable under the historical name
        :attr:`c`).
    config:
        The configuration used.
    mu / nu:
        The power-of-two scale vectors actually applied (``nu`` has length
        1 — the vector is the single column of the B side).
    phase_times:
        Wall-clock seconds per phase, under the same keys as
        :class:`~repro.result.PhaseTimes` so GEMV and GEMM breakdowns
        compare directly.
    ledger:
        Operation ledger of the INT8 engine — identical to what the
        ``n = 1`` GEMM route records for the same product (also reachable
        under the historical name :attr:`int8_counter`).
    moduli_selection:
        :class:`~repro.crt.adaptive.AdaptiveSelection` diagnostic for
        ``num_moduli="auto"`` runs; ``None`` for fixed counts.
    """

    mu: Optional[np.ndarray] = None
    nu: Optional[np.ndarray] = None
    moduli_selection: object = None

    @property
    def c(self) -> np.ndarray:
        """The emulated product (historical alias of :attr:`value`)."""
        return self.value

    @property
    def int8_counter(self) -> OpCounter:
        """The engine's op ledger (historical alias of :attr:`ledger`)."""
        return self.ledger


def _resolve_a_side(
    a: np.ndarray,
    a_prep: Optional[PreparedOperand],
    config: Ozaki2Config,
) -> Optional[np.ndarray]:
    """Validate the left operand (prepared or raw) exactly as the GEMM route."""
    if a_prep is not None:
        _check_prepared_a(a_prep, config)
        return None
    return check_operand(a, "A") if config.validate else np.asarray(a, dtype=np.float64)


def prepared_gemv(
    a: "np.ndarray | PreparedOperand",
    x: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    engine: Optional[MatrixEngine] = None,
    return_details: bool = False,
    constant_table: Optional[CRTConstantTable] = None,
) -> "np.ndarray | GemvResult":
    """Emulated matrix–vector product ``A @ x`` via the residue-GEMV path.

    Parameters
    ----------
    a:
        The matrix side: a precomputed operand from
        :func:`~repro.core.operand.prepare_a` — a fast-mode
        :class:`~repro.core.operand.ResidueOperand` (the convert-once
        solver pattern: the ``convert_A`` phase is skipped and reported as
        0) or an accurate-mode :class:`~repro.core.operand.AccurateOperand`
        (the per-side half of the scale phase is skipped; truncation and
        residues rerun per vector under the coupled scales) — or a raw
        ``(m, k)`` matrix converted on the spot.
    x:
        1-D vector of length ``k``.  Validation mirrors the GEMM route's
        treatment of the equivalent ``(k, 1)`` column bit for bit: empty
        vectors, non-finite entries and mismatched lengths raise the same
        precise :class:`~repro.errors.ValidationError`\\ s, and
        non-contiguous/strided input succeeds identically (it is copied
        contiguous, exactly as ``check_operand`` does for matrices).
    config:
        :class:`~repro.config.Ozaki2Config`; defaults to the prepared
        operand's configuration (or DGEMM emulation for raw ``a``).
        ``parallelism`` and ``memory_budget_mb`` are accepted but moot —
        the GEMV workspace is one ``(N, m)`` stack and a single fused
        engine call beats any fan-out of it.  Results are bit-identical to
        the plan/scheduler GEMM route at every setting; the op ledgers are
        identical too whenever that route runs untiled (a ``memory_budget_mb``
        small enough to force m-tiling splits the comparator's products
        into per-tile engine calls, which the never-tiling GEMV path has no
        reason to mirror).
    engine:
        INT8 matrix engine; defaults to a fresh
        :class:`~repro.engines.int8.Int8MatrixEngine`.
    return_details:
        When True, return a :class:`GemvResult` instead of just the vector.
    constant_table:
        Precomputed constant table (otherwise built/cached from the config).

    Returns
    -------
    ``c`` (1-D ndarray in the target dtype) or :class:`GemvResult` —
    bit-identical to ``ozaki2_gemm(a, x[:, None], config).ravel()``.
    """
    a_prep = a if isinstance(a, PreparedOperand) else None
    config = config or (a_prep.config if a_prep is not None else Ozaki2Config())
    out_dtype = result_dtype(config.precision)
    engine = engine or Int8MatrixEngine()
    times = PhaseTimes()

    a_mat = _resolve_a_side(a, a_prep, config)
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValidationError(f"prepared_gemv expects a 1-D vector, got shape {x.shape}")
    # Validate the vector exactly as the GEMM route validates the (k, 1)
    # column it would see — same messages, same contiguous copy for strided
    # input, same rejection of empty and non-finite vectors.
    if config.validate:
        x_col = check_operand(x[:, None], "B")
    else:
        x_col = np.ascontiguousarray(x)[:, None]

    m, k = a_prep.shape if a_prep is not None else a_mat.shape
    if k != x_col.shape[0]:
        shape_a = a_prep.shape if a_prep is not None else a_mat.shape
        raise ValidationError(
            f"inner dimensions do not match: A is {tuple(shape_a)}, "
            f"B is {tuple(x_col.shape)}"
        )
    if k > MAX_K_WITHOUT_BLOCKING and not config.block_k:
        raise OverflowRiskError(
            f"k={k} exceeds {MAX_K_WITHOUT_BLOCKING} and k-blocking is "
            "disabled in the config"
        )

    # Accuracy-driven moduli selection, exactly as the GEMM route resolves
    # it: concrete count, prepared side re-derived (cached), bit-identical
    # to the fixed-count run at the selected count.  A caller-supplied
    # table is rejected under auto, as on the GEMM route.
    selection = None
    if config.moduli_is_auto:
        if constant_table is not None:
            raise ConfigurationError(_AUTO_TABLE_RESTRICTION)
        config, a_prep, _, selection = _resolve_auto_moduli(
            a_mat, x_col, a_prep, None, k, config
        )
    table = constant_table or build_constant_table(
        config.num_moduli, 64 if config.is_dgemm else 32
    )

    # Line 1: scale vectors.  A fast prepared operand contributes its cached
    # μ; accurate mode finalises from the matrix side's pre-scale (cached on
    # an AccurateOperand, computed here otherwise) and the vector's, through
    # the coupled bound product — exactly the GEMM route's arithmetic.
    with _PhaseTimer(times, "scale"):
        if config.mode is ComputeMode.FAST:
            mu = a_prep.scale if a_prep is not None else fast_mode_scale_a(a_mat, table)
            nu = fast_mode_scale_b(x_col, table)
        else:
            pa = (
                a_prep.prescale
                if isinstance(a_prep, AccurateOperand)
                else accurate_mode_prescale(a_mat, axis=1)
            )
            pb = accurate_mode_prescale(x_col, axis=0)
            mu, nu, _ = accurate_scales_from_prescale(
                pa, pb, table, engine, MAX_K_WITHOUT_BLOCKING
            )

    # Lines 2 and 4: A' and its residues (skipped when A carries a fast-mode
    # residue stack; an accurate prepared operand converts from its retained
    # source under the partner-coupled scales).
    if isinstance(a_prep, ResidueOperand):
        a_slices = a_prep.slices
        times.add("convert_A", 0.0)
    else:
        a_conv_src = a_prep.source if a_prep is not None else a_mat
        with _PhaseTimer(times, "convert_A"):
            a_prime = truncate_scaled(a_conv_src, mu, side="left")
            a_slices = residue_slices(
                a_prime,
                table,
                config.residue_kernel,
                single_pass=config.fused_kernels,
            )

    # Lines 3 and 5: x' and its residues, converted vector-shaped — the
    # kernels are element-wise, so the 1-D pass is bit-identical to
    # converting the (k, 1) column (see crt.residues.residues_to_int8).
    with _PhaseTimer(times, "convert_B"):
        x_prime = truncate_scaled(x_col, nu, side="right").ravel()
        x_slices = residue_slices(
            x_prime,
            table,
            config.residue_kernel,
            single_pass=config.fused_kernels,
        )

    # Line 6: the N residue GEMVs — one fused engine call per k-block, no
    # plan, no scheduler, no tiling.  Multiple k-blocks accumulate the exact
    # INT32 partials in INT64, exactly as the blocked GEMM route does.
    with _PhaseTimer(times, "matmul"):
        blocks = (
            list(k_block_ranges(k, MAX_K_WITHOUT_BLOCKING))
            if config.block_k
            else [(0, k)]
        )
        if config.fused_kernels:
            def _block(start: int, stop: int) -> np.ndarray:
                return engine.matvec_stack(
                    a_slices[:, :, start:stop], x_slices[:, start:stop], trusted=True
                )
        else:
            # Pre-fusion comparator: per-modulus 2-D engine calls, exactly
            # the products the unfused GEMM route issues.
            def _block(start: int, stop: int) -> np.ndarray:
                return np.stack(
                    [
                        engine.matmul(
                            a_slices[i, :, start:stop], x_slices[i, start:stop][:, None]
                        )[:, 0]
                        for i in range(table.num_moduli)
                    ]
                )
        if len(blocks) == 1:
            c_stack = _block(*blocks[0])
        else:
            c_stack = np.zeros((table.num_moduli, m), dtype=np.int64)
            for start, stop in blocks:
                c_stack += _block(start, stop).astype(np.int64)

    # Lines 7-11: accumulation and CRT reconstruction, on the (N, m, 1)
    # view so every step matches the GEMM route bit for bit.
    use_mulhi = (
        config.residue_kernel is ResidueKernel.FAST_FMA and c_stack.dtype == np.int32
    )
    t1 = time.perf_counter()
    c1, c2 = accumulate_residue_products(
        c_stack[:, :, None], table, use_mulhi=use_mulhi, vectorized=config.fused_kernels
    )
    t2 = time.perf_counter()
    c_pp = reconstruct_crt(c1, c2, table)
    t3 = time.perf_counter()
    times.add("accumulate", t2 - t1)
    times.add("reconstruct", t3 - t2)

    # One emulated GEMV retired at this (possibly auto-selected) count.
    engine.counter.record_emulated(config.num_moduli)

    # Line 12: inverse scaling, then drop the dead column axis.
    with _PhaseTimer(times, "unscale"):
        c = unscale(c_pp, mu, nu, out_dtype=out_dtype)[:, 0]

    if not return_details:
        return c
    return GemvResult(
        value=c,
        config=config,
        mu=mu,
        nu=nu,
        phase_times=times,
        ledger=engine.counter,
        moduli_selection=selection,
        moduli_history=[config.num_moduli],
    )
