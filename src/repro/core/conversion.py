"""Conversion of scaled inputs to integer matrices and INT8 residues.

Covers lines 2–5 of Algorithm 1:

* ``A' = trunc(diag(μ)·A)`` and ``B' = trunc(B·diag(ν))`` — truncation
  toward zero after the power-of-two scaling (:func:`truncate_scaled`), and
* ``A'_i = rmod(A', p_i)``, ``B'_i = rmod(B', p_i)`` for every modulus,
  cast to INT8 (:func:`residue_slices`).
"""

from __future__ import annotations

import numpy as np

from ..config import ResidueKernel
from ..crt.constants import CRTConstantTable
from ..crt.residues import residues_to_int8

__all__ = ["truncate_scaled", "residue_slices"]


def truncate_scaled(x: np.ndarray, scale: np.ndarray, side: str) -> np.ndarray:
    """``trunc(diag(scale)·X)`` (side="left") or ``trunc(X·diag(scale))`` (side="right").

    The scales are powers of two, so the multiplication is exact; the
    truncation rounds toward zero, exactly as ``trunc`` in the paper.  The
    result is a float64 matrix whose entries are integers (possibly larger
    than 2^53 in magnitude for large ``N``; they remain exact float64
    values because scaling by a power of two only changes the exponent).
    """
    x = np.asarray(x, dtype=np.float64)
    scale = np.asarray(scale, dtype=np.float64)
    if side == "left":
        scaled = x * scale[:, None]
    elif side == "right":
        scaled = x * scale[None, :]
    else:
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    return np.trunc(scaled)


def residue_slices(
    x_prime: np.ndarray,
    table: CRTConstantTable,
    kernel: ResidueKernel = ResidueKernel.EXACT,
    single_pass: bool = True,
) -> np.ndarray:
    """INT8 residue stack ``[rmod(X', p_1), ..., rmod(X', p_N)]``.

    Returns an ``(N, *X'.shape)`` INT8 array (lines 4–5 of Algorithm 1).
    The ``kernel`` selects the IEEE-exact implementation or the paper's fast
    FMA kernel (Section 4.2).  ``single_pass`` selects the fused conversion
    (one cast/scan, remainders broadcast over a moduli axis) or the
    per-modulus loop; both are bit-identical (see
    :func:`repro.crt.residues.residues_to_int8`).
    """
    kernel = ResidueKernel.parse(kernel)
    if kernel is ResidueKernel.EXACT:
        return residues_to_int8(
            x_prime, table.moduli, kernel="exact", single_pass=single_pass
        )
    return residues_to_int8(
        x_prime,
        table.moduli,
        kernel="fast_fma",
        pinv_b=table.pinv64,
        pinv32=table.pinv32,
        precision_bits=table.precision_bits,
        single_pass=single_pass,
    )
