#!/usr/bin/env python
"""Density-matrix purification with emulated DGEMM (quantum-chemistry style).

The paper motivates emulation by pointing at applications that "do not
require the full precision of FP64" and cites quantum-chemistry work
(Dawson et al. 2024) on reduced-precision density-matrix construction.  This
example reproduces that scenario in miniature: Palser–Manolopoulos canonical
purification of a Hamiltonian's density matrix, where every iteration is
dominated by two dense GEMMs.  The purification is run with native DGEMM,
with SGEMM, and with Ozaki scheme II at several moduli counts, comparing
idempotency error, trace (electron-count) error, and the density error
against an eigensolver reference.

Usage::

    python examples/quantum_chemistry_density.py [n_orbitals] [n_electrons]

Defaults: 240 orbitals, 60 electrons.
"""

from __future__ import annotations

import sys
from typing import Callable

import numpy as np

from repro import emulated_dgemm
from repro.harness import format_table


def model_hamiltonian(n: int, seed: int = 5) -> np.ndarray:
    """Dense symmetric 'Hamiltonian' with exponentially decaying off-diagonals."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((n, n))
    decay = np.exp(-0.05 * np.abs(np.subtract.outer(np.arange(n), np.arange(n))))
    h = (base + base.T) * 0.5 * decay
    h[np.diag_indices(n)] = np.sort(rng.standard_normal(n) * 2.0)
    return h


def initial_density(h: np.ndarray, n_electrons: int) -> np.ndarray:
    """Initial guess mapping the spectrum into [0, 1] with the right trace."""
    n = h.shape[0]
    h_min = float(np.min(np.linalg.eigvalsh(h)))
    h_max = float(np.max(np.linalg.eigvalsh(h)))
    mu = float(np.trace(h)) / n
    lam = min(n_electrons / (h_max - mu), (n - n_electrons) / (mu - h_min)) / n
    return lam * (mu * np.eye(n) - h) + (n_electrons / n) * np.eye(n)


def canonical_purification(
    d0: np.ndarray,
    gemm: Callable[[np.ndarray, np.ndarray], np.ndarray],
    iterations: int = 60,
    tolerance: float = 1e-13,
) -> np.ndarray:
    """Palser–Manolopoulos canonical purification using ``gemm`` for products.

    The trace-conserving variant of McWeeny's iteration: each step evaluates
    ``D^2`` and ``D^3`` (two GEMMs — the dominant cost, as in linear-scaling
    electronic-structure codes) and mixes them so that ``tr(D)`` stays equal
    to the electron count while the eigenvalues are driven to {0, 1}.
    """
    d = d0.copy()
    for _ in range(iterations):
        d2 = gemm(d, d)
        d3 = gemm(d2, d)
        denominator = float(np.trace(d - d2))
        if abs(denominator) < tolerance:
            break
        c = float(np.trace(d2 - d3)) / denominator
        if c <= 0.5:
            d = ((1.0 - 2.0 * c) * d + (1.0 + c) * d2 - d3) / (1.0 - c)
        else:
            d = ((1.0 + c) * d2 - d3) / c
    return d


def main(n_orbitals: int = 240, n_electrons: int = 60) -> None:
    h = model_hamiltonian(n_orbitals)
    d0 = initial_density(h, n_electrons)

    # Tight reference: eigendecomposition-based projector onto the occupied space.
    eigvals, eigvecs = np.linalg.eigh(h)
    occupied = eigvecs[:, :n_electrons]
    d_exact = occupied @ occupied.T

    def evaluate(name: str, gemm: Callable[[np.ndarray, np.ndarray], np.ndarray]):
        d = canonical_purification(d0, gemm)
        idem = float(np.linalg.norm(gemm(d, d) - d) / max(np.linalg.norm(d), 1e-300))
        trace_err = abs(float(np.trace(d)) - n_electrons) / n_electrons
        density_err = float(np.linalg.norm(d - d_exact) / np.linalg.norm(d_exact))
        return {
            "GEMM": name,
            "idempotency_error": idem,
            "trace_error": trace_err,
            "density_error": density_err,
        }

    rows = [evaluate("native DGEMM", lambda x, y: x @ y)]
    rows.append(
        evaluate(
            "native SGEMM",
            lambda x, y: np.matmul(x.astype(np.float32), y.astype(np.float32)).astype(np.float64),
        )
    )
    for num_moduli in (8, 10, 12, 15):
        rows.append(
            evaluate(
                f"OS II-fast-{num_moduli}",
                lambda x, y, nm=num_moduli: emulated_dgemm(x, y, num_moduli=nm),
            )
        )

    print(
        format_table(
            rows,
            title=f"Canonical purification ({n_orbitals} orbitals, {n_electrons} electrons)",
        )
    )
    print(
        "\nModerate moduli counts already drive the purification to the same fixed\n"
        "point as native DGEMM, while SGEMM-level precision visibly limits the\n"
        "attainable idempotency — the mixed-precision sweet spot the paper targets."
    )


if __name__ == "__main__":
    orbitals = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    electrons = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    main(orbitals, electrons)
