#!/usr/bin/env python
"""Regenerate every table/figure of the paper's evaluation section.

Runs the per-figure entry points of :mod:`repro.harness.figures` and prints
their tables.  ``--full`` switches from the quick problem sizes to the
paper's sizes (substantially slower for the accuracy figures).

Usage::

    python examples/reproduce_paper_figures.py [--full] [--only FIG[,FIG...]]

where FIG is one of: 1, 3d, 3s, 4, 5, 6, 7, 8, 9, headline.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict

from repro.harness import (
    figure1,
    figure3_dgemm,
    figure3_sgemm,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    headline_claims,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the paper's problem sizes")
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated figure ids (1, 3d, 3s, 4, 5, 6, 7, 8, 9, headline)",
    )
    args = parser.parse_args()
    quick = not args.full

    figures: Dict[str, Callable[[], object]] = {
        "1": lambda: figure1(),
        "3d": lambda: figure3_dgemm(quick=quick),
        "3s": lambda: figure3_sgemm(quick=quick),
        "4": lambda: figure4(quick=quick),
        "5": lambda: figure5(quick=quick),
        "6": lambda: figure6(quick=quick),
        "7": lambda: figure7(quick=quick),
        "8": lambda: figure8(quick=quick),
        "9": lambda: figure9(quick=quick),
        "headline": lambda: headline_claims(),
    }
    selected = list(figures) if args.only is None else [s.strip() for s in args.only.split(",")]

    for key in selected:
        if key not in figures:
            raise SystemExit(f"unknown figure id {key!r}; choose from {sorted(figures)}")
        result = figures[key]()
        print(result.render())
        print()


if __name__ == "__main__":
    main()
