#!/usr/bin/env python
"""Quickstart: emulate DGEMM and SGEMM with Ozaki scheme II.

Runs the emulated GEMM on an HPL-like workload, compares its accuracy
against native GEMM and the prior INT8 emulation (ozIMMU), and prints the
per-phase wall-clock breakdown of the emulation on this machine.

Usage::

    python examples/quickstart.py [n]

where ``n`` (default 384) is the square problem size.
"""

from __future__ import annotations

import sys


from repro import Ozaki2Config, emulated_dgemm, emulated_sgemm, ozaki2_gemm
from repro.accuracy import max_relative_error, reference_gemm
from repro.baselines import native_dgemm, native_sgemm, ozimmu_gemm
from repro.harness import format_table
from repro.workloads import hpl_like_pair


def main(n: int = 384) -> None:
    print(f"== Ozaki scheme II quickstart (m = k = n = {n}) ==\n")

    # --- DGEMM emulation ---------------------------------------------------
    a, b = hpl_like_pair(n, n, n, seed=0)
    reference = reference_gemm(a, b)

    rows = []
    rows.append(
        {"method": "native DGEMM", "max_rel_error": max_relative_error(native_dgemm(a, b), reference)}
    )
    rows.append(
        {"method": "ozIMMU_EF-9", "max_rel_error": max_relative_error(ozimmu_gemm(a, b, 9), reference)}
    )
    for num_moduli in (12, 14, 15, 16):
        c = emulated_dgemm(a, b, num_moduli=num_moduli)
        rows.append(
            {"method": f"OS II-fast-{num_moduli}", "max_rel_error": max_relative_error(c, reference)}
        )
    print(format_table(rows, title="DGEMM emulation accuracy (vs double-double reference)"))
    print()

    # --- SGEMM emulation ---------------------------------------------------
    a32, b32 = hpl_like_pair(n, n, n, precision="fp32", seed=1)
    ref32 = reference_gemm(a32, b32)
    rows = [
        {"method": "native SGEMM", "max_rel_error": max_relative_error(native_sgemm(a32, b32), ref32)}
    ]
    for num_moduli in (6, 7, 8):
        c = emulated_sgemm(a32, b32, num_moduli=num_moduli)
        rows.append(
            {"method": f"OS II-fast-{num_moduli}", "max_rel_error": max_relative_error(c, ref32)}
        )
    print(format_table(rows, title="SGEMM emulation accuracy"))
    print()

    # --- per-phase breakdown of one emulated DGEMM --------------------------
    config = Ozaki2Config.for_dgemm(num_moduli=15)
    result = ozaki2_gemm(a, b, config=config, return_details=True)
    rows = [
        {"phase": phase, "seconds": seconds, "fraction": frac}
        for (phase, seconds), frac in zip(
            result.phase_times.seconds.items(), result.phase_times.fractions().values()
        )
    ]
    print(format_table(rows, title=f"CPU wall-clock breakdown of {result.method_name}"))
    print(
        f"\nINT8 engine issued {result.int8_counter.matmul_calls} GEMMs "
        f"({result.int8_counter.mac_ops / 1e9:.2f} GMACs)."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 384
    main(size)
