#!/usr/bin/env python
"""Choosing the number of moduli: accuracy/throughput trade-off explorer.

The accuracy of Ozaki scheme II is controlled by the number of moduli ``N``
(Figure 3) while its cost grows linearly in ``N`` (Figures 4-5).  This
example sweeps ``N`` for a user-selected workload, measures the actual
accuracy on this machine, asks the planner which ``N`` it would have picked,
and reports the modelled GH200 throughput of each setting — i.e. exactly the
trade-off a user of the library has to navigate.

Usage::

    python examples/precision_selection.py [n] [phi]

Defaults: n = 320, phi = 1.0.
"""

from __future__ import annotations

import sys

import numpy as np

from repro import choose_num_moduli, emulated_dgemm, emulated_sgemm
from repro.accuracy import max_relative_error, reference_gemm
from repro.harness import format_table
from repro.perfmodel import modeled_tflops
from repro.workloads import phi_pair


def main(n: int = 320, phi: float = 1.0) -> None:
    a, b = phi_pair(n, n, n, phi=phi, seed=11)
    reference = reference_gemm(a, b)
    native_err = max_relative_error(a @ b, reference)

    rows = []
    for num_moduli in range(8, 19, 2):
        c = emulated_dgemm(a, b, num_moduli=num_moduli)
        rows.append(
            {
                "N": num_moduli,
                "max_rel_error": max_relative_error(c, reference),
                "reaches_fp64": max_relative_error(c, reference) <= 2 * native_err,
                "GH200_model_TFLOPS": modeled_tflops(
                    f"OS II-fast-{num_moduli}", "GH200", 16384, 16384, 16384, target="fp64"
                ),
            }
        )
    print(format_table(rows, title=f"DGEMM emulation, phi={phi}: accuracy vs modelled throughput"))
    print(f"\nnative DGEMM max relative error: {native_err:.3e}")
    picked = choose_num_moduli("fp64", k=n, phi=phi)
    print(f"planner suggestion for fp64, k={n}, phi={phi}: N = {picked}")

    a32, b32 = phi_pair(n, n, n, phi=phi, precision="fp32", seed=12)
    ref32 = reference_gemm(a32, b32)
    native32 = max_relative_error(np.matmul(a32, b32, dtype=np.float32), ref32)
    rows = []
    for num_moduli in range(4, 11):
        c = emulated_sgemm(a32, b32, num_moduli=num_moduli)
        rows.append(
            {
                "N": num_moduli,
                "max_rel_error": max_relative_error(c, ref32),
                "reaches_fp32": max_relative_error(c, ref32) <= 2 * native32,
                "GH200_model_TFLOPS": modeled_tflops(
                    f"OS II-fast-{num_moduli}", "GH200", 16384, 16384, 16384, target="fp32"
                ),
            }
        )
    print()
    print(format_table(rows, title=f"SGEMM emulation, phi={phi}: accuracy vs modelled throughput"))
    print(f"\nnative SGEMM max relative error: {native32:.3e}")
    picked32 = choose_num_moduli("fp32", k=n, phi=phi)
    print(f"planner suggestion for fp32, k={n}, phi={phi}: N = {picked32}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 320
    spread = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    main(size, spread)
