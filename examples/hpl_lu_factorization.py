#!/usr/bin/env python
"""HPL-style blocked LU factorisation on top of emulated DGEMM.

Section 5.1 of the paper argues that HPL (the LINPACK benchmark) "can employ
emulation with 14 or 15 moduli".  This example demonstrates that claim end to
end: a right-looking blocked LU factorisation whose trailing-matrix updates
(the Schur complements — by far the dominant cost of HPL) are performed with
Ozaki scheme II instead of native DGEMM, and whose final backward error is
compared against the all-native factorisation.

Usage::

    python examples/hpl_lu_factorization.py [n] [block]

Defaults: n = 512, block = 128.
"""

from __future__ import annotations

import sys
from typing import Callable

import numpy as np

from repro import emulated_dgemm
from repro.harness import format_table
from repro.workloads import phi_matrix


def blocked_lu(a: np.ndarray, block: int, gemm: Callable[[np.ndarray, np.ndarray], np.ndarray]):
    """Right-looking blocked LU without pivoting, using ``gemm`` for updates.

    Returns ``(L, U)``.  Pivoting is omitted to keep the kernel focused on
    the GEMM update; the generated matrices are diagonally dominated enough
    for this to stay stable.
    """
    n = a.shape[0]
    lu = a.copy()
    for start in range(0, n, block):
        stop = min(start + block, n)
        panel = slice(start, stop)
        trail = slice(stop, n)

        # Factor the diagonal block with plain (unblocked) Gaussian elimination.
        for j in range(start, stop):
            lu[j + 1:stop, j] /= lu[j, j]
            lu[j + 1:stop, j + 1:stop] -= np.outer(lu[j + 1:stop, j], lu[j, j + 1:stop])

        if stop >= n:
            break

        # Panel solves.
        l_panel = np.tril(lu[panel, panel], -1) + np.eye(stop - start)
        u_panel = np.triu(lu[panel, panel])
        lu[panel, trail] = np.linalg.solve(l_panel, lu[panel, trail])
        lu[trail, panel] = np.linalg.solve(u_panel.T, lu[trail, panel].T).T

        # Trailing update (the HPL DGEMM): A22 <- A22 - L21 @ U12.
        lu[trail, trail] -= gemm(lu[trail, panel], lu[panel, trail])

    lower = np.tril(lu, -1) + np.eye(n)
    upper = np.triu(lu)
    return lower, upper


def backward_error(a: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> float:
    """Normwise backward error ||A - LU|| / ||A||."""
    residual = a - lower @ upper
    return float(np.linalg.norm(residual) / np.linalg.norm(a))


def main(n: int = 512, block: int = 128) -> None:
    rng_matrix = phi_matrix(n, n, phi=0.5, seed=7)
    # Make the matrix comfortably non-singular for pivot-free LU.
    a = rng_matrix + n * np.eye(n)

    rows = []
    lower, upper = blocked_lu(a, block, lambda x, y: x @ y)
    rows.append({"update GEMM": "native DGEMM", "backward_error": backward_error(a, lower, upper)})

    for num_moduli in (12, 14, 15):
        gemm = lambda x, y, nm=num_moduli: emulated_dgemm(x, y, num_moduli=nm)
        lower, upper = blocked_lu(a, block, gemm)
        rows.append(
            {
                "update GEMM": f"OS II-fast-{num_moduli}",
                "backward_error": backward_error(a, lower, upper),
            }
        )

    print(format_table(rows, title=f"Blocked LU (n={n}, block={block}) backward error"))
    print(
        "\nWith 14-15 moduli the emulated trailing update reaches the same backward\n"
        "error as native DGEMM, supporting the paper's HPL claim (Section 5.1)."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    blk = int(sys.argv[2]) if len(sys.argv) > 2 else 128
    main(size, blk)
