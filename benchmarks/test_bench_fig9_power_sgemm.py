"""Figure 9: modelled power efficiency of SGEMM emulation (GFLOPS/W)."""

from __future__ import annotations

from repro.harness.figures import figure9
from repro.harness.report import format_table


def test_bench_figure9(benchmark, save_result):
    result = benchmark.pedantic(lambda: figure9(quick=False), rounds=1, iterations=1)
    save_result(
        "figure9_sgemm_power",
        format_table(result.rows, float_format=".4g", title=result.description),
    )
    eff = {(r["gpu"], r["method"], r["n"]): r["gflops_per_watt"] for r in result.rows}

    n = 16384
    # GH200: OS II-fast-7..9 improve substantially on SGEMM (paper: +103-154%).
    for num_moduli in (7, 8, 9):
        gain = eff[("GH200", f"OS II-fast-{num_moduli}", n)] / eff[("GH200", "SGEMM", n)] - 1
        assert 0.5 < gain < 3.0

    # Accurate mode is slightly less power-efficient than fast mode.
    assert eff[("GH200", "OS II-accu-8", n)] < eff[("GH200", "OS II-fast-8", n)]

    # TF32GEMM remains the efficiency ceiling of the comparison.
    assert eff[("GH200", "TF32GEMM", n)] > eff[("GH200", "OS II-fast-7", n)]

    # A100 shows the same qualitative picture.
    assert eff[("A100", "OS II-fast-8", n)] > eff[("A100", "SGEMM", n)]
