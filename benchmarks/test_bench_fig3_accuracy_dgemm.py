"""Figure 3 (top): accuracy of DGEMM emulation vs number of moduli and phi.

Runs the real emulation (INT8 engine on this CPU) on the paper's
phi-lognormal workloads at reduced sizes and checks the orderings the paper
reports: accuracy improves with N, OS II-fast-15 reaches DGEMM level at
phi=0.5, accurate mode tolerates large phi better than fast mode.
"""

from __future__ import annotations


from repro.harness.experiments import accuracy_sweep
from repro.harness.report import format_table

METHODS = (
    "DGEMM",
    "ozIMMU_EF-9",
    "OS II-fast-13",
    "OS II-fast-14",
    "OS II-fast-15",
    "OS II-fast-16",
    "OS II-accu-14",
    "OS II-accu-15",
)
PHIS = (0.5, 1.0, 2.0, 4.0)
KS = (256, 1024)
M = N = 256


def _run():
    return accuracy_sweep(METHODS, PHIS, KS, m=M, n=N, precision="fp64", seed=0)


def test_bench_figure3_dgemm(benchmark, save_result):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result(
        "figure3_dgemm_accuracy",
        format_table(rows, float_format=".3e", title="Figure 3 (top): DGEMM emulation accuracy"),
    )

    def err(method, phi, k):
        return next(
            r["max_rel_error"]
            for r in rows
            if r["method"] == method and r["phi"] == phi and r["k"] == k
        )

    for k in KS:
        # Accuracy improves monotonically with the number of moduli (phi=0.5).
        errors = [err(f"OS II-fast-{n}", 0.5, k) for n in (13, 14, 15, 16)]
        assert errors[0] >= errors[1] >= errors[2] >= errors[3]
        # OS II-fast-15 reaches DGEMM-level accuracy at phi = 0.5.
        assert err("OS II-fast-15", 0.5, k) <= 10 * err("DGEMM", 0.5, k)
        # ozIMMU_EF-9 also reaches DGEMM level (it is the prior art).
        assert err("ozIMMU_EF-9", 0.5, k) <= 10 * err("DGEMM", 0.5, k)

    # Fast mode degrades as phi grows; accurate mode is no worse than fast.
    assert err("OS II-fast-14", 4.0, 256) >= err("OS II-fast-14", 0.5, 256)
    assert err("OS II-accu-14", 4.0, 256) <= err("OS II-fast-14", 4.0, 256)
