"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures.  The rendered
ASCII table is written to ``benchmarks/results/<name>.txt`` so the artefacts
survive the run, and key relationships from the paper are asserted so the
benchmarks double as regression checks.

Run with::

    pytest benchmarks/ --benchmark-only

Accuracy benchmarks execute real numerical experiments (the INT8 engine and
all baselines run on this CPU); throughput/power benchmarks evaluate the
analytic GPU model (see DESIGN.md for the hardware-substitution rationale).
"""

from __future__ import annotations

import pathlib
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[1]
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def pytest_collection_modifyitems(items):
    """Mark every benchmark as ``slow``.

    ``pytest_collection_modifyitems`` receives the *whole session's* items
    (conftest directory scoping applies to fixtures, not collection hooks),
    so the marker is applied only to items that actually live under
    ``benchmarks/`` — otherwise a combined ``tests + benchmarks`` run with
    ``-m "not slow"`` would deselect the entire tier-1 suite.  The tier-1
    suite still runs the benchmarks (``pytest -x -q`` selects everything),
    but the CI test matrix deselects them with ``-m "not slow"`` — the
    smoke job runs the benchmark files explicitly and uploads their tables.
    """
    bench_dir = str(pathlib.Path(__file__).resolve().parent)
    for item in items:
        if str(item.fspath).startswith(bench_dir):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the rendered tables of every benchmark."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a rendered table to ``benchmarks/results/<name>.txt``.

    Every artifact is prefixed with the machine-readable provenance stamp
    (:mod:`repro.harness.provenance`): host, CPU count, git revision,
    library versions.  The stamp lines stay glued to the first table (no
    blank line) so the artifact tests' blank-line section splitting keeps
    working.
    """
    from repro.harness.provenance import stamp

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(stamp({"artifact": name}) + text + "\n")

    return _save
