"""Figure 3 (bottom): accuracy of SGEMM emulation vs number of moduli and phi."""

from __future__ import annotations

from repro.harness.experiments import accuracy_sweep
from repro.harness.report import format_table

METHODS = (
    "SGEMM",
    "TF32GEMM",
    "BF16x9",
    "cuMpSGEMM",
    "OS II-fast-5",
    "OS II-fast-7",
    "OS II-fast-8",
    "OS II-accu-7",
    "OS II-accu-8",
)
PHIS = (0.5, 1.0, 1.5)
KS = (256, 1024)
M = N = 256


def _run():
    return accuracy_sweep(METHODS, PHIS, KS, m=M, n=N, precision="fp32", seed=0)


def test_bench_figure3_sgemm(benchmark, save_result):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result(
        "figure3_sgemm_accuracy",
        format_table(rows, float_format=".3e", title="Figure 3 (bottom): SGEMM emulation accuracy"),
    )

    def err(method, phi, k):
        return next(
            r["max_rel_error"]
            for r in rows
            if r["method"] == method and r["phi"] == phi and r["k"] == k
        )

    for phi in PHIS:
        for k in KS:
            # SGEMM and BF16x9 exhibit equivalent accuracy (Section 5.1).
            assert err("BF16x9", phi, k) <= 20 * err("SGEMM", phi, k)
            # cuMpSGEMM emulates SGEMM without accuracy loss.
            assert err("cuMpSGEMM", phi, k) <= 20 * err("SGEMM", phi, k)
            # TF32 is far less accurate than SGEMM.
            assert err("TF32GEMM", phi, k) > 10 * err("SGEMM", phi, k)
            # OS II with 7-8 moduli reaches SGEMM-level accuracy.
            assert err("OS II-fast-8", phi, k) <= 20 * err("SGEMM", phi, k)
            assert err("OS II-accu-8", phi, k) <= 20 * err("SGEMM", phi, k)
            # Few moduli give intermediate (TF32-to-FP32) accuracy.
            assert err("OS II-fast-5", phi, k) >= err("OS II-fast-8", phi, k)
