"""Figure 6: modelled time breakdown of DGEMM emulation (fast/accurate modes)."""

from __future__ import annotations

from repro.harness.figures import figure6
from repro.harness.report import format_table


def test_bench_figure6(benchmark, save_result):
    result = benchmark.pedantic(lambda: figure6(quick=False), rounds=1, iterations=1)
    save_result(
        "figure6_dgemm_breakdown",
        format_table(result.rows, float_format=".3f", title=result.description),
    )

    def fraction(gpu, method, n, phase):
        return next(
            r["fraction"]
            for r in result.rows
            if r["gpu"] == gpu and r["method"] == method and r["n"] == n and r["phase"] == phase
        )

    # Matmul share grows with n on both GPUs (Section 5.3).
    for gpu in ("GH200", "RTX5080"):
        assert fraction(gpu, "OS II-fast-15", 16384, "matmul") > fraction(
            gpu, "OS II-fast-15", 1024, "matmul"
        )

    # On GH200 the INT8 GEMMs dominate at n=16384; on RTX 5080 the weak FP64
    # keeps the non-matmul share much larger (around half at n=8192).
    assert fraction("GH200", "OS II-fast-15", 16384, "matmul") > 0.5
    rtx_non_matmul = 1.0 - fraction("RTX5080", "OS II-fast-15", 8192, "matmul")
    gh_non_matmul = 1.0 - fraction("GH200", "OS II-fast-15", 8192, "matmul")
    assert rtx_non_matmul > gh_non_matmul
    assert 0.25 < rtx_non_matmul < 0.75

    # Accurate mode spends more of its time in the scale phase (extra GEMM).
    for gpu in ("GH200", "RTX5080"):
        assert fraction(gpu, "OS II-accu-15", 4096, "scale") > fraction(
            gpu, "OS II-fast-15", 4096, "scale"
        )
