"""Prepared-operand reuse benchmark: convert once, multiply many.

Measures the amortised per-call wall clock of multiplying one fixed ``A``
against ``r`` partners through a single :func:`repro.prepare_a` (scales +
truncation + INT8 residues computed once) versus ``r`` plain
:func:`repro.ozaki2_gemm` calls that re-convert ``A`` every time.

Bitwise equality of the two paths is asserted unconditionally — preparation
caches, it never reorders floating-point work.  The amortised per-call time
of the prepared path must fall strictly below the unprepared path for reuse
counts ≥ 4: the one-time conversion is then paid off and every extra call
saves the whole ``convert_A`` phase (~20% of the wall clock at this size,
see ``results/cpu_wallclock_phase_breakdown.txt``).

Results land in ``benchmarks/results/prepared_reuse.txt`` (uploaded as a CI
artifact by the smoke job).
"""

from __future__ import annotations

import os

from repro.harness import prepared_reuse_sweep
from repro.harness.report import format_table

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

SIZE = 1024 if FULL else 256
REUSE_COUNTS = (1, 2, 4, 8, 16) if FULL else (1, 2, 4, 8)


def test_bench_prepared_reuse(save_result):
    # Best-of-5 on both paths in the quick run: the structural margin at
    # reuse >= 4 is ~15% of total time, so the minimum over 5 runs keeps a
    # scheduling hiccup on a shared CI runner from flipping the comparison.
    rows = prepared_reuse_sweep(
        SIZE,
        reuse_counts=REUSE_COUNTS,
        num_moduli=15,
        repeats=1 if FULL else 5,
    )
    table = format_table(
        rows,
        float_format=".3e",
        title=f"prepared-operand reuse: convert once, multiply many ({SIZE}^3)",
    )
    save_result("prepared_reuse", table)

    assert all(row["bit_identical"] for row in rows)
    for row in rows:
        if row["reuse"] >= 4:
            assert row["amortised_prepared"] < row["amortised_unprepared"], (
                f"prepared path not amortised at reuse={row['reuse']}: "
                f"{row['amortised_prepared']:.3e}s per call vs "
                f"{row['amortised_unprepared']:.3e}s unprepared"
            )
