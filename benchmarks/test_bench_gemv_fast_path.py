"""GEMV fast-path benchmark: residue-GEMV kernel vs the n=1 GEMM route.

Measures the per-iteration latency of an emulated ``A @ x`` against a
prepared 4096x4096 system matrix — the exact product every iteration of the
:mod:`repro.apps.solvers` iterative solvers pays — through both routes of
:func:`repro.apps.solvers.prepared_matvec`:

* ``gemv_fast_path=True`` (default): the dedicated
  :func:`repro.core.gemv.prepared_gemv` kernel — one fused stacked engine
  GEMV (INT32-accumulating einsum, no float64 promotion of the residue
  stack), vector-shaped conversion, no plan/scheduler machinery;
* ``gemv_fast_path=False``: the full ``n = 1`` GEMM route, kept in-tree as
  the verification comparator.

Bitwise equality of the products *and* equality of the op ledgers are
asserted unconditionally — the fast path is an execution strategy, not a
numerical change.  The ``>= 2x`` lower per-iteration latency requirement of
the GEMV work is asserted at the 4096x4096 acceptance scale.

The before/after per-iteration latency (and a per-phase breakdown) is
archived in ``benchmarks/results/gemv_fast_path.txt`` (uploaded as a CI
artifact by the smoke job); ``tests/test_benchmark_artifacts.py`` asserts
the committed table stays parseable.  A companion table archives the PCG
preconditioner iteration counts in
``benchmarks/results/preconditioner_iterations.txt``.
"""

from __future__ import annotations

import os

from repro.harness import gemv_fast_path_sweep, preconditioner_sweep
from repro.harness.report import format_table

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
CPUS = os.cpu_count() or 1

#: Problem size of the GEMV comparison.  4096x4096 is the acceptance scale
#: (the ~250 MiB residue stack makes the GEMM route's float64 promotion
#: traffic visible); the full run adds more iterations, not size.
SIZE = 4096
ITERS = 8 if FULL else 4
REPEATS = 3 if FULL else 2


def test_bench_gemv_fast_path_speedup(save_result):
    rows = gemv_fast_path_sweep(SIZE, num_moduli=15, iters=ITERS, repeats=REPEATS)
    table = format_table(
        rows,
        float_format=".3e",
        title=(
            f"gemv fast path: residue-GEMV kernel vs n=1 GEMM route "
            f"(OS II-fast-15, {SIZE}x{SIZE} prepared matrix, {ITERS} matvecs, "
            f"{CPUS} CPUs)"
        ),
    )
    save_result("gemv_fast_path", table)

    # The core guarantees hold on every row.
    assert all(row["bit_identical"] for row in rows)
    assert all(row["ledger_equal"] for row in rows)

    fast = next(row for row in rows if row["route"] == "gemv-fast")
    # The headline requirement of the GEMV work: >= 2x lower per-iteration
    # latency than the plan/scheduler n=1 route at the acceptance scale.
    assert fast["speedup_vs_gemm"] >= 2.0, (
        f"gemv fast path reached only {fast['speedup_vs_gemm']:.2f}x over the "
        f"n=1 GEMM route at {SIZE}x{SIZE}"
    )


def test_bench_preconditioner_iterations(save_result):
    rows = preconditioner_sweep(size=96, kinds=("none", "ilu0", "ssor"), cond=1e3)
    table = format_table(
        rows,
        float_format=".3e",
        title=(
            "pcg preconditioners: iterations to tol=1e-8 on the "
            "ill-conditioned SPD family (n=96, cond=1e3)"
        ),
    )
    save_result("preconditioner_iterations", table)

    by_kind = {row["precond"]: row for row in rows}
    assert all(row["converged"] for row in rows)
    # Factored-once preconditioning must strictly cut the iteration count
    # (and with it the number of emulated matvecs) vs plain CG.
    assert by_kind["ilu0"]["iterations"] < by_kind["none"]["iterations"]
    assert by_kind["ssor"]["iterations"] < by_kind["none"]["iterations"]
