"""Figure 7: modelled time breakdown of SGEMM emulation (fast/accurate modes)."""

from __future__ import annotations

from repro.harness.figures import figure7
from repro.harness.report import format_table


def test_bench_figure7(benchmark, save_result):
    result = benchmark.pedantic(lambda: figure7(quick=False), rounds=1, iterations=1)
    save_result(
        "figure7_sgemm_breakdown",
        format_table(result.rows, float_format=".3f", title=result.description),
    )

    def fraction(gpu, method, n, phase):
        return next(
            r["fraction"]
            for r in result.rows
            if r["gpu"] == gpu and r["method"] == method and r["n"] == n and r["phase"] == phase
        )

    # Conversion phases shrink as n grows.
    for gpu in ("GH200", "RTX5080"):
        conv = lambda n: fraction(gpu, "OS II-fast-8", n, "convert_A") + fraction(
            gpu, "OS II-fast-8", n, "convert_B"
        )
        assert conv(1024) > conv(16384)

    # SGEMM emulation's conversions run in FP32; on RTX 5080 (where FP32 is
    # strong) the non-matmul share is smaller than for DGEMM emulation at the
    # same size (Section 5.3: conversion is "accelerated compared to that of
    # DGEMM emulation").
    from repro.perfmodel import phase_breakdown

    sgemm_non_matmul = 1.0 - fraction("RTX5080", "OS II-fast-8", 8192, "matmul")
    dgemm_non_matmul = 1.0 - phase_breakdown("OS II-fast-15", "RTX5080", 8192, 8192, 8192)["matmul"]
    assert sgemm_non_matmul < dgemm_non_matmul

    # Accurate mode's scale phase is heavier.
    assert fraction("GH200", "OS II-accu-8", 4096, "scale") > fraction(
        "GH200", "OS II-fast-8", 4096, "scale"
    )
