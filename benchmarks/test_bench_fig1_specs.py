"""Figure 1: peak TFLOPS/TOPS of AMD and NVIDIA GPUs per generation."""

from __future__ import annotations

from repro.harness import figure1


def test_bench_figure1(benchmark, save_result):
    result = benchmark.pedantic(figure1, rounds=1, iterations=1)
    save_result("figure1_gpu_peaks", result.render())

    by_name = {row["gpu"]: row for row in result.rows}
    # The motivating trend of the paper: every recent datacentre GPU runs
    # INT8 an order of magnitude faster than FP64, and the gap explodes on
    # consumer Blackwell.
    assert by_name["V100"]["int8_over_fp64"] < by_name["A100"]["int8_over_fp64"]
    assert by_name["V100"]["int8_over_fp64"] < by_name["H100"]["int8_over_fp64"]
    for name in ("A100", "H100", "MI300X", "B200"):
        assert by_name[name]["int8_over_fp64"] > 10
    assert by_name["RTX5080"]["int8_over_fp64"] > 100
    # Low-precision throughput grows much faster than FP64 across generations.
    assert by_name["H100"]["int8_tops"] / by_name["V100"]["int8_tops"] > 10
    assert by_name["H100"]["fp64_tflops"] / by_name["V100"]["fp64_tflops"] < 10
