"""Adaptive-moduli benchmark: auto-N emulation and progressive solves.

Two experiments back the adaptive-precision subsystem
(:mod:`repro.crt.adaptive`):

* **Auto-N GEMM** — small-k / well-scaled workload families run through
  ``num_moduli="auto"`` (default accuracy target unless the family pins
  one) against the paper's fixed DGEMM default ``N = 15``.  Asserted on
  every family: the measured max element-wise error stays within the
  selection's bound (rigorous, or calibrated when the measured-margin
  model decided — ``decided_by`` in the table), and the auto result is
  *bitwise identical* to a fixed run at the selected count (auto selection
  chooses the configuration, never the arithmetic — the fixed route is the
  in-tree comparator, exactly the ``--no-fused``/``--no-gemv-fast``
  pattern).  The headline family must reach the >= 1.3x end-to-end
  acceptance speedup, and the ``fp64-deepk`` family must show the
  calibrated model certifying N=9 where the rigorous bound demands 11.

* **Progressive-precision CG** — the moduli-escalation ladder
  (``progressive=True``) against the fixed-count solve on the
  ill-conditioned SPD family.  Both routes face the same full-count
  residual check; the progressive route must converge in at most the
  fixed route's wall clock.

The tables are archived in ``benchmarks/results/adaptive_moduli.txt`` (and
uploaded as a CI artifact by the smoke job);
``tests/test_benchmark_artifacts.py`` asserts the committed table stays
parseable and keeps certifying the claims.
"""

from __future__ import annotations

import os

from repro.harness import adaptive_moduli_sweep, progressive_solver_sweep
from repro.harness.report import format_table

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
CPUS = os.cpu_count() or 1

#: Small-k / well-scaled families (phi=0.5 is the HPL-like spread).  The
#: first row is the headline acceptance family; the fp32 families compare
#: against the SGEMM default N=8.  ``n_rigorous`` / ``decided_by`` in the
#: archived table show which selection model fixed each count: the
#: calibrated model (measured margins minus the guard, see
#: :mod:`repro.crt.calibration`) lowers N=11 -> 10 on the k >= 32 fp64
#: rows at the default target, and on ``fp64-deepk`` — whose target sits
#: just below the rigorous N=10 boundary, the regime where the rigorous
#: model over-provisions hardest — it certifies N=9 where the rigorous
#: model demands 11.  ``fp64-smallk`` and ``fp32-smallk`` document the
#: safe fallback: on the tightest band the observed margin does not clear
#: the guard plus the count gap, so the rigorous selection stands.
FAMILIES = [
    {"label": "fp64-smallk", "m": 768, "k": 16, "n": 768, "phi": 0.5},
    {"label": "fp64-k32", "m": 512, "k": 32, "n": 512, "phi": 0.5},
    {"label": "fp64-phi1", "m": 384, "k": 64, "n": 384, "phi": 1.0},
    {
        "label": "fp64-deepk",
        "m": 256,
        "k": 1024,
        "n": 256,
        "phi": 0.5,
        "target_accuracy": 5e-10,
    },
    {
        "label": "fp32-smallk",
        "m": 512,
        "k": 32,
        "n": 512,
        "phi": 0.5,
        "precision": "fp32",
        "num_moduli_fixed": 8,
    },
    {
        "label": "fp32-k256",
        "m": 256,
        "k": 256,
        "n": 256,
        "phi": 0.5,
        "precision": "fp32",
        "num_moduli_fixed": 8,
    },
]

REPEATS = 5 if FULL else 3

#: Progressive-CG system: the preconditioner benchmark's ill-conditioned
#: SPD family, large enough that per-iteration matvec cost dominates the
#: ladder's operand re-derivations.
SOLVE_SIZE = 1024
SOLVE_COND = 1e3


def test_bench_adaptive_auto_moduli_speedup(save_result):
    rows = adaptive_moduli_sweep(FAMILIES, repeats=REPEATS)
    gemm_table = format_table(
        rows,
        float_format=".3e",
        title=(
            f"adaptive moduli: auto-N vs fixed N (default target_accuracy, "
            f"{CPUS} CPUs)"
        ),
    )

    solver_rows = progressive_solver_sweep(
        size=SOLVE_SIZE, cond=SOLVE_COND, tol=1e-10
    )
    solver_table = format_table(
        solver_rows,
        float_format=".3e",
        title=(
            f"progressive-precision CG vs fixed N=15 (ill-conditioned SPD, "
            f"n={SOLVE_SIZE}, cond={SOLVE_COND:g}, {CPUS} CPUs)"
        ),
    )
    save_result("adaptive_moduli", gemm_table + "\n\n" + solver_table)

    # The accuracy guarantee and the comparator guarantee hold on EVERY
    # tested family.
    assert all(row["within_bound"] for row in rows), [
        (row["family"], row["max_error"], row["error_bound"]) for row in rows
    ]
    assert all(row["bit_identical"] for row in rows)
    # Auto never selects beyond the table ceiling, and always fewer moduli
    # than the fixed default on these well-scaled families.
    assert all(row["n_auto"] <= 20 for row in rows)
    assert all(row["n_auto"] < row["n_fixed"] for row in rows)

    # Headline acceptance: >= 1.3x end-to-end on the small-k / well-scaled
    # fp64 family at the default accuracy target.
    headline = rows[0]
    assert headline["speedup"] >= 1.3, (
        f"auto-N reached only {headline['speedup']:.2f}x vs fixed N=15 on "
        f"{headline['family']} (selected N={headline['n_auto']})"
    )

    # Calibrated-selection acceptance: the measured-margin model lowers the
    # count below the rigorous selection on the deep-k family (11 -> 9) and
    # the within_bound/bit_identical asserts above certify the result
    # against the *calibrated* bound; the small-k rows must show the safe
    # fallback (rigorous decided, count unchanged).
    by_label = {row["family"]: row for row in rows}
    deepk = by_label["fp64-deepk"]
    assert deepk["decided_by"] == "calibrated", deepk
    assert deepk["n_auto"] <= 9 < deepk["n_rigorous"], deepk
    assert by_label["fp64-smallk"]["decided_by"] == "rigorous"
    assert all(row["n_auto"] <= row["n_rigorous"] for row in rows)

    # Progressive CG: same final residual check, within the fixed wall clock.
    fixed, prog = solver_rows
    assert fixed["converged"] and prog["converged"]
    assert prog["residual"] <= prog["tol"]
    assert prog["seconds"] <= fixed["seconds"], (
        f"progressive CG took {prog['seconds']:.2f}s vs fixed "
        f"{fixed['seconds']:.2f}s (schedule {prog['schedule']})"
    )
