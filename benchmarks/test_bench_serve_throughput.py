"""Serving benchmark: warm fingerprint hits vs cold uploads.

Two experiments back the service layer (:mod:`repro.service`):

* **Reuse-heavy GEMV trace** — one matrix, many right-hand sides, served
  over HTTP twice: against a cache-disabled server with fingerprinting off
  (every request uploads the matrix and converts it from scratch) and
  against a default server with the negotiating client (the matrix is
  uploaded and prepared once, then referenced by fingerprint).  Both routes
  must be bit-identical to an in-process :class:`repro.session.Session`,
  and the warm route must clear the >= 2x requests/sec acceptance floor.

* **Cache-capacity sweep** — a skewed trace over a working set of
  matrices, replayed against shrinking LRU byte budgets.  Throughput and
  hit rate must grow monotonically-ish with capacity; the
  capacity >= working-set row must not evict.

The tables are archived in ``benchmarks/results/serve_throughput.txt``
(and uploaded as a CI artifact by the smoke job);
``tests/test_benchmark_artifacts.py`` asserts the committed table stays
parseable and keeps certifying the claims.
"""

from __future__ import annotations

import os

from repro.harness import serve_cache_sweep, serve_throughput_sweep
from repro.harness.report import format_table

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
CPUS = os.cpu_count() or 1

SIZE = 512 if FULL else 384
REQUESTS = 48 if FULL else 24
REPEATS = 3 if FULL else 2

CACHE_SIZE = 256 if FULL else 192
CACHE_WORKING_SET = 6
CACHE_REQUESTS = 48 if FULL else 36
CACHE_ENTRIES = (1, 2, 4, 6)


def test_bench_serve_warm_vs_cold(save_result):
    rows = serve_throughput_sweep(size=SIZE, requests=REQUESTS, repeats=REPEATS)
    throughput_table = format_table(
        rows,
        float_format=".3e",
        title=(
            f"serve throughput: warm fingerprint hits vs cold uploads "
            f"(GEMV reuse trace, {CPUS} CPUs)"
        ),
    )

    cache_rows = serve_cache_sweep(
        size=CACHE_SIZE,
        working_set=CACHE_WORKING_SET,
        requests=CACHE_REQUESTS,
        cache_entries=CACHE_ENTRIES,
    )
    cache_table = format_table(
        cache_rows,
        float_format=".3e",
        title=(
            f"operand cache capacity sweep (skewed trace, n={CACHE_SIZE}, "
            f"working set {CACHE_WORKING_SET}, {CPUS} CPUs)"
        ),
    )
    save_result("serve_throughput", throughput_table + "\n\n" + cache_table)

    # A warm fingerprint hit is served from the very operand a cold upload
    # would have produced — bit-identical to the in-process Session.
    headline = rows[0]
    assert headline["bit_identical"]
    # Warm requests skip both the upload and the conversion: the trace is
    # reuse-heavy, so almost every request hits.
    assert headline["hit_rate"] >= 0.9
    # Headline acceptance: warm-hit requests/sec >= 2x the cold-miss rate.
    assert headline["speedup"] >= 2.0, (
        f"warm serving reached only {headline['speedup']:.2f}x the cold "
        f"rate ({headline['rps_warm']:.1f} vs {headline['rps_cold']:.1f} rps)"
    )

    # Capacity sweep sanity: hits never decrease as the budget grows, and a
    # budget covering the working set serves the steady state evictionless.
    hit_rates = [row["hit_rate"] for row in cache_rows]
    assert all(b >= a - 1e-9 for a, b in zip(hit_rates, hit_rates[1:])), hit_rates
    full_row = cache_rows[-1]
    assert full_row["capacity_entries"] >= CACHE_WORKING_SET
    assert full_row["evictions"] == 0
    assert full_row["hit_rate"] > cache_rows[0]["hit_rate"]
