"""Runtime-scaling benchmarks: serial vs parallel, batched vs loop.

Measures the execution runtime of :mod:`repro.runtime` on this machine:

* parallel residue execution (``Ozaki2Config.parallelism``) against the
  strictly serial path, and
* :func:`repro.ozaki2_gemm_batched` against a Python loop of serial calls.

Bitwise equality between all paths is asserted unconditionally — it is the
runtime's core guarantee.  The ``>= 1.5x`` speedup requirement is enforced
only in the full-scale run (``REPRO_BENCH_FULL=1``, 4096^3 DGEMM emulation,
several minutes) on hosts with at least 4 CPUs: at quick-run sizes the
serial scale/convert phases cap the achievable speedup (Amdahl), and on a
single-core container a thread pool cannot beat serial execution at all.
The default quick run keeps tier-1 fast and only guards against
pathological pool overhead.

Results land in ``benchmarks/results/runtime_scaling.txt`` (uploaded as a
CI artifact by the smoke job).
"""

from __future__ import annotations

import os

import pytest

from repro import Ozaki2Config, ozaki2_gemm
from repro.harness import batched_speedup_sweep, runtime_scaling_sweep
from repro.harness.report import format_table
from repro.workloads import phi_pair

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
CPUS = os.cpu_count() or 1

#: Problem size of the serial-vs-parallel scaling run.  The full setting is
#: the acceptance-scale 4096^3 DGEMM emulation.
SCALING_SIZE = 4096 if FULL else 256
SCALING_WORKERS = (1, 2, 4) if (FULL or CPUS >= 4) else (1, 2)

#: Batched-vs-loop setting: 8 same-shape problems so the batched path can
#: share one residue-conversion pass.
BATCH_SIZE = 512 if FULL else 128
BATCH_ITEMS = 8


def test_bench_runtime_parallel_scaling(save_result):
    rows = runtime_scaling_sweep(
        [SCALING_SIZE],
        workers=SCALING_WORKERS,
        num_moduli=15,
        repeats=2 if not FULL else 1,
    )
    # Record the host so archived tables are interpretable: a speedup of
    # 0.9x means something entirely different on 1 vCPU than on 8 cores.
    for row in rows:
        row["host_cpus"] = CPUS
    table = format_table(
        rows,
        float_format=".3e",
        title=f"runtime scaling: serial vs parallel ({CPUS} CPUs)",
    )
    save_result("runtime_scaling", table)

    assert all(row["bit_identical"] for row in rows)
    parallel_speedups = [
        row["speedup_vs_serial"] for row in rows if row["workers"] > 1
    ]
    assert parallel_speedups, "sweep produced no parallel rows"
    best_speedup = max(parallel_speedups)
    if CPUS < 2:
        # A skip, not a silent pass: on a single-CPU host no pool can beat
        # serial, so asserting any speedup floor would either flake or
        # vacuously succeed.  Bit-identity (above) is still enforced.
        pytest.skip(
            f"speedup assertion needs >= 2 CPUs (host has {CPUS}); "
            "bit-identity was still asserted"
        )
    # The paper-motivated >=1.5x scaling claim only holds where the matmul
    # phase dominates (large problems) and real cores back the workers, so
    # it is enforced only in the explicit REPRO_BENCH_FULL run: at small
    # quick-run sizes the serial phases cap Amdahl speedup well below it,
    # and shared CI vCPUs make any hard floor a flake gate.
    if FULL and CPUS >= 4:
        assert best_speedup >= 1.5, (
            f"parallel residue execution reached only {best_speedup:.2f}x "
            f"over serial with workers={SCALING_WORKERS} on {CPUS} CPUs"
        )
    else:
        # Guard only against pathological pool overhead in the parallel rows.
        assert min(parallel_speedups) > 0.5


def test_bench_runtime_batched_vs_loop(save_result):
    rows = batched_speedup_sweep(
        BATCH_SIZE,
        BATCH_ITEMS,
        num_moduli=15,
        parallelism=min(4, CPUS),
    )
    table = format_table(
        rows,
        float_format=".3e",
        title=f"runtime scaling: batched vs loop ({BATCH_ITEMS} x {BATCH_SIZE}^3)",
    )
    save_result("runtime_batched_vs_loop", table)

    assert all(row["bit_identical"] for row in rows)
    batched_row = next(row for row in rows if row["strategy"] == "batched")
    # Batching amortises conversion and pool start-up; it must never cost
    # more than a modest constant factor over the loop, on any host.
    assert batched_row["speedup_vs_loop"] > 0.66


def test_bench_parallel_gemm_wallclock(benchmark):
    """pytest-benchmark hook so runtime regressions show up in the table."""
    a, b = phi_pair(192, 192, 192, phi=0.5, seed=3)
    config = Ozaki2Config(num_moduli=15, parallelism=min(4, CPUS))
    c = benchmark(ozaki2_gemm, a, b, config)
    serial = ozaki2_gemm(a, b, config=config.replace(parallelism=1))
    assert (c == serial).all()
