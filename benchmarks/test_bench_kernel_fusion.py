"""Kernel-fusion benchmark: fused stacked path vs the per-modulus loop.

Measures the end-to-end wall clock of one ``OS II-fast-15`` emulated DGEMM
at 512^3 through both execution paths of :mod:`repro.runtime`:

* ``fused_kernels=True`` (default): modulus-chunk ``matmul_stack`` engine
  calls, single-pass residue conversion, vectorized CRT accumulation and
  the trusted-operand fast path;
* ``fused_kernels=False``: the pre-fusion per-modulus loop, kept in-tree as
  the verification comparator.

Bitwise equality of the results *and* equality of the merged op ledgers are
asserted unconditionally at every tested parallelism — fusion reorders no
floating-point operation and accounts for exactly the same N residue GEMMs.
The ``>= 1.5x`` speedup requirement of the fusion work is asserted on the
serial run (best-of-repeats on both sides; worker fan-out shrinks both
paths' matmul phase and with it the fusible overhead, so the serial ratio
is the meaningful one).

The before/after per-phase breakdown is archived in
``benchmarks/results/kernel_fusion.txt`` (uploaded as a CI artifact by the
smoke job); ``tests/test_benchmark_artifacts.py`` asserts the committed
table stays parseable.
"""

from __future__ import annotations

import os

from repro.harness import kernel_fusion_sweep
from repro.harness.report import format_table

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
CPUS = os.cpu_count() or 1

#: Problem size of the fusion comparison.  512^3 is the acceptance scale;
#: the full run doubles it to show the ratio holds as BLAS work grows.
SIZE = 1024 if FULL else 512
WORKERS = (1, min(4, CPUS)) if CPUS > 1 else (1,)
REPEATS = 3


def test_bench_kernel_fusion_speedup(save_result):
    rows = kernel_fusion_sweep(
        SIZE, num_moduli=15, workers=WORKERS, repeats=REPEATS
    )
    table = format_table(
        rows,
        float_format=".3e",
        title=(
            f"kernel fusion: fused stack vs per-modulus loop "
            f"(OS II-fast-15, {SIZE}^3, {CPUS} CPUs)"
        ),
    )
    save_result("kernel_fusion", table)

    # The core guarantees hold at every tested parallelism.
    assert all(row["bit_identical"] for row in rows)
    assert all(row["ledger_equal"] for row in rows)

    serial_fused = next(
        row for row in rows if row["workers"] == 1 and row["path"] == "fused"
    )
    # The headline requirement of the fusion work: >= 1.5x end-to-end on the
    # serial path at the acceptance scale.
    assert serial_fused["speedup_vs_loop"] >= 1.5, (
        f"fused path reached only {serial_fused['speedup_vs_loop']:.2f}x over "
        f"the per-modulus loop at {SIZE}^3"
    )
    # Parallel rows are reported in the archived table but carry no hard
    # wall-clock gate: on shared CI runners the fan-out timing is noisy, and
    # their correctness is already pinned by the bitwise/ledger asserts.
