"""Figure 4: modelled throughput of DGEMM emulation on A100 / GH200 / RTX 5080."""

from __future__ import annotations

from repro.harness.figures import EVAL_GPUS, figure4
from repro.harness.report import format_table


def test_bench_figure4(benchmark, save_result):
    result = benchmark.pedantic(lambda: figure4(quick=False), rounds=1, iterations=1)
    save_result(
        "figure4_dgemm_throughput",
        format_table(result.rows, float_format=".4g", title=result.description),
    )
    tflops = {(r["gpu"], r["method"], r["n"]): r["tflops"] for r in result.rows}

    # GH200 / A100: native DGEMM wins at n=1024, OS II wins at n=16384
    # (the crossover of Figure 4), and OS II always beats ozIMMU.
    for gpu in ("A100", "GH200"):
        assert tflops[(gpu, "DGEMM", 1024)] > tflops[(gpu, "OS II-fast-15", 1024)]
        assert tflops[(gpu, "OS II-fast-14", 16384)] > tflops[(gpu, "DGEMM", 16384)]
        for n in (1024, 4096, 16384):
            assert tflops[(gpu, "OS II-fast-15", n)] > tflops[(gpu, "ozIMMU_EF-9", n)]

    # GH200 headline: ~1.4x over native DGEMM at n=16384.
    ratio = tflops[("GH200", "OS II-fast-14", 16384)] / tflops[("GH200", "DGEMM", 16384)]
    assert 1.2 < ratio < 1.8

    # RTX 5080: emulation is an order of magnitude faster than native FP64.
    assert (
        tflops[("RTX5080", "OS II-fast-14", 8192)]
        > 10 * tflops[("RTX5080", "DGEMM", 8192)]
    )

    # Fast mode is never slower than accurate mode (one fewer INT8 GEMM).
    for gpu in EVAL_GPUS:
        for n in (4096, 16384):
            assert tflops[(gpu, "OS II-fast-15", n)] >= tflops[(gpu, "OS II-accu-15", n)]
