"""Figure 5: modelled throughput of SGEMM emulation on A100 / GH200 / RTX 5080."""

from __future__ import annotations

from repro.harness.figures import figure5
from repro.harness.report import format_table


def test_bench_figure5(benchmark, save_result):
    result = benchmark.pedantic(lambda: figure5(quick=False), rounds=1, iterations=1)
    save_result(
        "figure5_sgemm_throughput",
        format_table(result.rows, float_format=".4g", title=result.description),
    )
    tflops = {(r["gpu"], r["method"], r["n"]): r["tflops"] for r in result.rows}

    # GH200: 2.3-3.0x speedup over SGEMM at n=16384 (allow a looser band),
    # and OS II sits between SGEMM and TF32GEMM.
    n = 16384
    for num_moduli in (7, 8, 9):
        ratio = tflops[("GH200", f"OS II-fast-{num_moduli}", n)] / tflops[("GH200", "SGEMM", n)]
        assert 1.8 < ratio < 3.5
    assert (
        tflops[("GH200", "SGEMM", n)]
        < tflops[("GH200", "OS II-fast-8", n)]
        < tflops[("GH200", "TF32GEMM", n)]
    )

    # BF16x9 is comparable to SGEMM on Hopper/Ampere (no native support).
    for gpu in ("A100", "GH200"):
        ratio = tflops[(gpu, "BF16x9", n)] / tflops[(gpu, "SGEMM", n)]
        assert 0.8 < ratio < 1.2

    # RTX 5080: OS II-fast-7 edges out SGEMM for very large n (paper: n=12288).
    assert tflops[("RTX5080", "OS II-fast-7", 16384)] > tflops[("RTX5080", "SGEMM", 16384)]
    # ... but not at small n.
    assert tflops[("RTX5080", "OS II-fast-7", 1024)] < tflops[("RTX5080", "SGEMM", 1024)]
