"""Calibration QC benchmark: bound tightness, margins and negative controls.

Three sections back the calibrated selection model
(:mod:`repro.crt.calibration`), archived with provenance in
``benchmarks/results/calibration_qc.txt``:

* **Sensitivity sweep** — measured error vs the rigorous a-priori bound
  across workload families at the selection-relevant moduli counts.  The
  rigorous bound must hold on *every* cell (a single violation falsifies
  the bound derivation, not just the calibration).

* **Fitted margins vs shipped calibration** — the per-band margin minima
  re-fit from this run's sweep next to the shipped
  :data:`~repro.crt.calibration.DEFAULT_CALIBRATION` entries.  A shipped
  entry claiming more margin than this run observes plus the guard is a
  stale calibration: the fit must be re-run (see the table's provenance
  field for the exact command) before the calibrated model can be trusted.

* **Negative controls** — deliberately broken configurations (far too few
  moduli) that must *exceed* a loosened target.  A control that lands
  within target means the harness cannot tell a broken configuration from
  a working one — the controls gate this benchmark, and a green sweep
  with red controls fails the run.
"""

from __future__ import annotations

import os

from repro.accuracy import qc
from repro.crt.calibration import DEFAULT_CALIBRATION, K_BANDS
from repro.harness.report import format_table

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
CPUS = os.cpu_count() or 1

#: Quick mode sweeps a representative k per band at the selection
#: neighbourhood; full mode covers every band with two seeds.
KS = (16, 64, 256, 1024) if FULL else (16, 256)
SEEDS = (0, 1) if FULL else (0,)


def test_bench_calibration_qc(save_result):
    controls = qc.negative_controls(k=64 if not FULL else 256)
    control_table = format_table(
        controls,
        float_format=".3e",
        title=(
            f"negative controls: deliberately broken configs must exceed the "
            f"loosened target ({CPUS} CPUs)"
        ),
    )

    rows = qc.sensitivity_sweep(ks=KS, seeds=SEEDS)
    sweep_table = format_table(
        rows,
        columns=[
            "precision_bits",
            "mode",
            "family",
            "k",
            "seed",
            "num_moduli",
            "measured_rel_error",
            "rigorous_rel_bound",
            "within_bound",
            "observed_margin_bits",
            "trunc_dominated",
        ],
        float_format=".3e",
        title=(
            "sensitivity sweep: measured error vs rigorous bound "
            "(selection-neighbourhood moduli counts)"
        ),
    )

    fitted = qc.fit_margin_bits(rows)
    margin_rows = []
    for (bits, mode), bands in sorted(fitted.items()):
        for lo, hi, margin in bands:
            shipped = DEFAULT_CALIBRATION.entry_for(lo, bits, mode)
            margin_rows.append(
                {
                    "precision_bits": bits,
                    "mode": mode,
                    "k_lo": lo,
                    "k_hi": hi,
                    "fit_margin_bits": round(margin, 2),
                    "shipped_margin_bits": (
                        shipped.observed_margin_bits if shipped else float("nan")
                    ),
                    "guard_bits": shipped.guard_bits if shipped else float("nan"),
                    "shipped_not_stale": bool(
                        shipped is not None
                        and shipped.observed_margin_bits - shipped.guard_bits
                        <= margin
                    ),
                }
            )
    margin_table = format_table(
        margin_rows,
        float_format=".2f",
        title="fitted margins (this run) vs shipped DEFAULT_CALIBRATION",
    )

    save_result(
        "calibration_qc",
        control_table + "\n\n" + sweep_table + "\n\n" + margin_table,
    )

    # The controls gate everything: a "broken" configuration passing its
    # loosened target means the error metric itself is broken.
    assert all(row["control_ok"] for row in controls), [
        (row["family"], row["mode"], row["measured_rel_error"])
        for row in controls
        if not row["control_ok"]
    ]
    # The rigorous bound is a theorem about this code; one violation kills.
    assert all(row["within_bound"] for row in rows), [
        (row["family"], row["k"], row["num_moduli"]) for row in rows
        if not row["within_bound"]
    ]
    # The shipped calibration must stay honest against this run: the margin
    # it *claims* (observed minus guard) may never exceed what this run
    # measured on the same band.
    assert margin_rows, "sensitivity sweep produced no truncation-dominated cells"
    assert all(row["shipped_not_stale"] for row in margin_rows), [
        row for row in margin_rows if not row["shipped_not_stale"]
    ]
    # Every swept band must be covered by a shipped calibration entry.
    swept_bands = {
        (row["precision_bits"], row["mode"], row["k_lo"]) for row in margin_rows
    }
    for bits, mode, lo in swept_bands:
        assert DEFAULT_CALIBRATION.entry_for(lo, bits, mode) is not None
    assert all(lo >= K_BANDS[0][0] for _, _, lo in swept_bands)
