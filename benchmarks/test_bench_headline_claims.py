"""Abstract / Section 5 headline claims, recomputed from the model at n=16384."""

from __future__ import annotations

from repro.harness.figures import headline_claims
from repro.harness.report import format_table


def test_bench_headline_claims(benchmark, save_result):
    result = benchmark.pedantic(headline_claims, rounds=1, iterations=1)
    save_result(
        "headline_claims",
        format_table(result.rows, float_format=".3f", title=result.description),
    )
    dgemm_rows = [r for r in result.rows if r["claim"].startswith("DGEMM")]
    sgemm_rows = [r for r in result.rows if r["claim"].startswith("SGEMM")]

    # "the proposed DGEMM emulation achieves a 1.4x speedup and a 43%
    # improvement in power efficiency compared to native DGEMM"
    assert any(1.3 <= r["speedup_vs_native"] <= 1.6 for r in dgemm_rows)
    assert any(0.2 <= r["power_gain_vs_native"] <= 0.7 for r in dgemm_rows)

    # "the proposed SGEMM emulation achieves a 3.0x speedup and a 154%
    # improvement in power efficiency compared to native SGEMM"
    assert any(2.3 <= r["speedup_vs_native"] <= 3.2 for r in sgemm_rows)
    assert any(1.0 <= r["power_gain_vs_native"] <= 2.5 for r in sgemm_rows)

    # "compared to conventional emulation methods, the proposed emulation
    # achieves more than 2x higher performance"
    assert all(r["speedup_vs_prior"] > 2.0 for r in dgemm_rows)
    assert all(r["speedup_vs_prior"] > 2.0 for r in sgemm_rows)
