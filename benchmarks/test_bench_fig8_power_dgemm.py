"""Figure 8: modelled power efficiency of DGEMM emulation (GFLOPS/W)."""

from __future__ import annotations

from repro.harness.figures import figure8
from repro.harness.report import format_table


def test_bench_figure8(benchmark, save_result):
    result = benchmark.pedantic(lambda: figure8(quick=False), rounds=1, iterations=1)
    save_result(
        "figure8_dgemm_power",
        format_table(result.rows, float_format=".4g", title=result.description),
    )
    eff = {(r["gpu"], r["method"], r["n"]): r["gflops_per_watt"] for r in result.rows}

    n = 16384
    # GH200: every accuracy-sufficient OS II-fast setting improves on DGEMM
    # (paper: +20-43%); ozIMMU does not.
    for num_moduli in (14, 15, 16):
        gain = eff[("GH200", f"OS II-fast-{num_moduli}", n)] / eff[("GH200", "DGEMM", n)] - 1
        assert 0.1 < gain < 1.0
    assert eff[("GH200", "ozIMMU_EF-9", n)] < eff[("GH200", "DGEMM", n)]

    # The power-efficiency ranking follows the throughput ranking at large n
    # (Section 5.4: "trends similar to those of throughput performance").
    assert (
        eff[("GH200", "OS II-fast-14", n)]
        > eff[("GH200", "OS II-accu-14", n)]
        > eff[("GH200", "ozIMMU_EF-9", n)]
    )

    # At small n the emulation's power-efficiency deficit is smaller than its
    # throughput deficit (Section 5.4).
    from repro.perfmodel import modeled_tflops

    thr_ratio = modeled_tflops("OS II-fast-15", "GH200", 1024, 1024, 1024) / modeled_tflops(
        "DGEMM", "GH200", 1024, 1024, 1024
    )
    pow_ratio = eff[("GH200", "OS II-fast-15", 1024)] / eff[("GH200", "DGEMM", 1024)]
    assert pow_ratio > thr_ratio
