"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each ablation isolates one implementation technique of Section 4 and
quantifies what it buys:

* split-constant (``s_i1``/``s_i2``) accumulation vs naive FP64 accumulation
  of the raw INT32 products,
* fast vs accurate computing mode (accuracy for wide exponent spreads),
* exact vs fast-FMA residue kernels (identical results; different cost),
* UINT8 residue accumulation vs INT32 accumulation (memory traffic in the
  cost model).
"""

from __future__ import annotations

import numpy as np

from repro import emulated_dgemm
from repro.accuracy import max_relative_error, reference_gemm
from repro.config import Ozaki2Config
from repro.core.accumulation import accumulate_residue_products
from repro.core.conversion import residue_slices, truncate_scaled
from repro.core.gemm import ozaki2_gemm
from repro.core.scaling import fast_mode_scales
from repro.crt.constants import build_constant_table
from repro.harness.report import format_table
from repro.workloads import phi_pair


def _naive_reconstruction(a, b, num_moduli):
    """Ablation: accumulate w_i * C'_i directly in FP64 (no s1/s2 split, no
    UINT8 reduction) — the approach the paper's Section 4.3 warns against."""
    table = build_constant_table(num_moduli, 64)
    mu, nu = fast_mode_scales(a, b, table)
    a_prime = truncate_scaled(a, mu, "left")
    b_prime = truncate_scaled(b, nu, "right")
    a_slices = residue_slices(a_prime, table)
    b_slices = residue_slices(b_prime, table)
    c_acc = np.zeros((a.shape[0], b.shape[1]), dtype=np.float64)
    for i in range(num_moduli):
        c_i = a_slices[i].astype(np.float64) @ b_slices[i].astype(np.float64)
        u_i = np.mod(c_i, float(table.moduli[i]))
        # weight applied as a single rounded float64 constant
        c_acc += float(table.weights_int[i]) * u_i
    q = np.rint(c_acc * table.Pinv)
    c_pp = c_acc - float(table.P_int) * q
    return (c_pp / mu[:, None]) / nu[None, :]


def test_bench_ablation_split_accumulation(benchmark, save_result):
    """The s1/s2 split accumulation is what makes FP64-level accuracy
    reachable; the naive accumulation plateaus orders of magnitude earlier."""
    a, b = phi_pair(192, 384, 160, phi=0.5, seed=0)
    ref = reference_gemm(a, b)

    def run():
        rows = []
        for n in (12, 14, 16):
            split_err = max_relative_error(emulated_dgemm(a, b, num_moduli=n), ref)
            naive_err = max_relative_error(_naive_reconstruction(a, b, n), ref)
            rows.append(
                {"num_moduli": n, "split_s1s2_error": split_err, "naive_fp64_error": naive_err}
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_split_accumulation",
        format_table(rows, float_format=".3e", title="Ablation: split-constant accumulation"),
    )
    for row in rows:
        assert row["split_s1s2_error"] < row["naive_fp64_error"]
    # With 16 moduli the split accumulation is at least 100x more accurate.
    assert rows[-1]["split_s1s2_error"] * 100 < rows[-1]["naive_fp64_error"]


def test_bench_ablation_fast_vs_accurate_mode(benchmark, save_result):
    """Accurate mode buys accuracy for wide exponent spreads (phi = 4)."""
    a, b = phi_pair(160, 320, 128, phi=4.0, seed=1)
    ref = reference_gemm(a, b)

    def run():
        rows = []
        for n in (12, 14, 16):
            fast = max_relative_error(emulated_dgemm(a, b, num_moduli=n, mode="fast"), ref)
            accu = max_relative_error(emulated_dgemm(a, b, num_moduli=n, mode="accurate"), ref)
            rows.append({"num_moduli": n, "fast_error": fast, "accurate_error": accu})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_fast_vs_accurate",
        format_table(rows, float_format=".3e", title="Ablation: fast vs accurate mode (phi=4)"),
    )
    assert all(row["accurate_error"] <= row["fast_error"] * 1.5 for row in rows)


def test_bench_ablation_residue_kernels(benchmark, save_result):
    """The fast FMA residue kernel must give bit-identical emulation results
    while avoiding the expensive exact remainder path."""
    a, b = phi_pair(192, 256, 160, phi=1.0, seed=2)

    def run():
        exact = ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(15, residue_kernel="exact"))
        fast = ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(15, residue_kernel="fast_fma"))
        return exact, fast

    exact, fast = benchmark.pedantic(run, rounds=1, iterations=1)
    max_diff = float(np.max(np.abs(exact - fast)))
    save_result(
        "ablation_residue_kernels",
        format_table(
            [{"kernel_pair": "exact vs fast_fma", "max_abs_difference": max_diff}],
            float_format=".3e",
            title="Ablation: residue kernel equivalence",
        ),
    )
    scale = float(np.max(np.abs(exact)))
    assert max_diff <= 1e-12 * scale


def test_bench_ablation_uint8_vs_int32_accumulation_traffic(benchmark, save_result):
    """Reducing C'_i to UINT8 residues and fusing the weighted sum into one
    kernel (lines 7-9 of Alg. 1) moves far fewer bytes than accumulating the
    FP64 result after every INT8 GEMM, and the ``__mulhi`` mod kernel gives
    bit-identical residues to the exact integer remainder."""
    rng = np.random.default_rng(3)
    table = build_constant_table(15, 64)
    c_stack = rng.integers(-(2**31), 2**31, (15, 64, 64)).astype(np.int32)

    def run():
        c1_u8, c2_u8 = accumulate_residue_products(c_stack, table, use_mulhi=True)
        c1_ref, c2_ref = accumulate_residue_products(c_stack, table, use_mulhi=False)
        return c1_u8, c1_ref, c2_u8, c2_ref

    c1_u8, c1_ref, c2_u8, c2_ref = benchmark.pedantic(run, rounds=1, iterations=1)
    np.testing.assert_array_equal(c1_u8, c1_ref)
    np.testing.assert_array_equal(c2_u8, c2_ref)

    # Modelled accumulation-stage traffic at the paper's largest size.
    n_mod, size = 15, 8192
    elements = size * size
    # Paper: read each INT32 product once, write one UINT8 residue, then one
    # fused pass reading the N UINT8 planes and writing C'(1)/C'(2) in FP64.
    paper_bytes = n_mod * elements * (4 + 1) + elements * (n_mod * 1 + 2 * 8)
    # Naive: after each of the N INT8 GEMMs, read the INT32 product and
    # read-modify-write the two FP64 accumulators.
    naive_bytes = n_mod * elements * (4 + 2 * 8 * 2)
    rows = [
        {"variant": "uint8 residues + fused sum (paper)", "accumulate_bytes": paper_bytes},
        {"variant": "per-GEMM fp64 accumulation", "accumulate_bytes": naive_bytes},
        {"variant": "traffic ratio", "accumulate_bytes": naive_bytes / paper_bytes},
    ]
    save_result(
        "ablation_uint8_accumulation",
        format_table(rows, float_format=".4g", title="Ablation: accumulation memory traffic"),
    )
    assert paper_bytes * 3 < naive_bytes
