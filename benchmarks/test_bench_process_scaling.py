"""Process-pool scaling benchmark: thread executor vs process executor.

The thread scheduler's residue GEMMs release the GIL inside BLAS, but the
INT8 conversion and CRT accumulation phases are pure-Python/NumPy and
serialise on it.  The process executor (``Ozaki2Config.executor``) moves
whole modulus chunks and output tiles into worker *processes* that read
the operand stacks from shared memory and write partials into a shared
output — no GIL, no pickling of matrices.  This benchmark sweeps
``executor x workers`` on one fast-mode GEMM and archives the table
(``benchmarks/results/process_scaling.txt``, uploaded by the CI smoke
job) with the per-phase breakdown where the de-serialised
convert/accumulate is visible.

Bitwise equality and op-ledger equality against the serial baseline are
asserted unconditionally on every row — they are the runtime's core
guarantee, independent of backend.  The ``>= 1.5x`` process-over-serial
floor from the acceptance criteria is enforced only in the full-scale run
(``REPRO_BENCH_FULL=1``, 1024^3, minutes) on hosts with at least 4 real
CPUs; quick runs on small containers skip it (explicitly — not a silent
pass) because no pool of any kind can beat serial on one core.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import format_table, process_scaling_sweep

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
CPUS = os.cpu_count() or 1

#: Acceptance-scale problem (1024^3 fast-mode DGEMM emulation) in the full
#: run; a quick size otherwise so tier-1 stays fast.
SCALING_SIZE = 1024 if FULL else 192
SCALING_WORKERS = (1, 2, 4)


def test_bench_process_scaling(save_result):
    rows = process_scaling_sweep(
        SCALING_SIZE,
        workers=SCALING_WORKERS,
        num_moduli=15,
        repeats=2 if not FULL else 1,
    )
    for row in rows:
        row["host_cpus"] = CPUS
    table = format_table(
        rows,
        float_format=".3e",
        title=(
            f"process scaling: thread vs process executor "
            f"({SCALING_SIZE}^3, {CPUS} CPUs)"
        ),
    )
    save_result("process_scaling", table)

    assert all(row["bit_identical"] for row in rows)
    assert all(row["ledger_equal"] for row in rows)
    process_rows = [row for row in rows if row["executor"] == "process"]
    assert process_rows, "sweep produced no process-executor rows"

    if CPUS < 4:
        pytest.skip(
            f"process-speedup floor needs >= 4 CPUs (host has {CPUS}); "
            "bit-identity and ledger equality were still asserted"
        )
    if FULL:
        best = max(row["speedup_vs_serial"] for row in process_rows)
        assert best >= 1.5, (
            f"process executor reached only {best:.2f}x over serial at "
            f"{SCALING_SIZE}^3 with workers={SCALING_WORKERS} on {CPUS} CPUs"
        )
