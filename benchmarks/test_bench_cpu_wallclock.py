"""CPU wall-clock benchmarks of this library's implementations.

Not a figure from the paper (the paper measures GPU kernels); these time the
actual NumPy implementations on this machine with pytest-benchmark so that
performance regressions in the library itself are visible.  The per-phase
wall-clock breakdown of the emulation is also recorded, mirroring the
structure of Figures 6-7 for the CPU substrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Ozaki2Config, emulated_dgemm, emulated_sgemm, ozaki2_gemm
from repro.baselines import bf16x9_gemm, cumpsgemm_fp16tcec, native_dgemm, ozimmu_gemm
from repro.harness.report import format_table
from repro.workloads import phi_pair

N = 256


@pytest.fixture(scope="module")
def pair64():
    return phi_pair(N, N, N, phi=0.5, seed=0)


@pytest.fixture(scope="module")
def pair32():
    return phi_pair(N, N, N, phi=0.5, precision="fp32", seed=0)


def test_bench_native_dgemm(benchmark, pair64):
    a, b = pair64
    benchmark(native_dgemm, a, b)


def test_bench_osii_fast_15_dgemm(benchmark, pair64):
    a, b = pair64
    c = benchmark(emulated_dgemm, a, b, 15)
    assert np.allclose(c, a @ b, rtol=1e-9)


def test_bench_osii_accu_15_dgemm(benchmark, pair64):
    a, b = pair64
    benchmark(emulated_dgemm, a, b, 15, "accurate")


def test_bench_ozimmu_9_dgemm(benchmark, pair64):
    a, b = pair64
    benchmark(ozimmu_gemm, a, b, 9)


def test_bench_osii_fast_8_sgemm(benchmark, pair32):
    a, b = pair32
    benchmark(emulated_sgemm, a, b, 8)


def test_bench_bf16x9_sgemm(benchmark, pair32):
    a, b = pair32
    benchmark(bf16x9_gemm, a, b)


def test_bench_cumpsgemm_sgemm(benchmark, pair32):
    a, b = pair32
    benchmark(cumpsgemm_fp16tcec, a, b)


def test_bench_cpu_phase_breakdown(benchmark, pair64, save_result):
    """Record the measured per-phase wall-clock split of one emulated DGEMM."""
    a, b = pair64

    def run():
        return ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(15), return_details=True)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"phase": phase, "seconds": seconds, "fraction": frac}
        for (phase, seconds), frac in zip(
            result.phase_times.seconds.items(), result.phase_times.fractions().values()
        )
    ]
    save_result(
        "cpu_wallclock_phase_breakdown",
        format_table(rows, float_format=".4g", title=f"CPU phase breakdown, OS II-fast-15, n={N}"),
    )
    assert result.phase_times.total > 0
