"""Compatibility shim; all metadata lives in pyproject.toml (PEP 621).

Kept so environments whose setuptools predates PEP 660 editable wheels
(or that lack the ``wheel`` package) can still do a legacy editable
install via ``python setup.py develop``.
"""

from setuptools import setup

setup()
